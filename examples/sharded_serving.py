"""Sharded model-parallel serving: head-sliced KV arenas + priced all-gather.

Demonstrates the `repro.cluster.shard` subsystem end to end:

1. the same bursty decode workload is served by one engine at
   tensor-parallel widths K in {1, 2, 4}: `partition_heads` slices the
   attention heads contiguously across K modelled workers, each owning a
   head-slice `KVCachePool` arena and running the ragged lazy kernel on
   its slice only;
2. the per-head kept-token partial outputs are combined by a modelled
   **all-gather** whose payload is proportional to *kept* (head, token)
   pairs — Token-Picker's Eq. 5 pruning shrinks the interconnect
   traffic by the same kept fraction that shrinks KV DRAM traffic, a
   systems payoff the DAC'24 paper never measured;
3. sharded decode is **bit-identical** to unsharded (per-request
   traffic counters compared across every width, including K=3 on 4
   heads — an uneven split);
4. the hardware model prices a sharded step as
   `weights + straggler-shard attention + all-gather + prefill share`
   (:meth:`repro.hw.serving.ServingSimulator.step_from_sharded`).

Run:  python examples/sharded_serving.py
"""

import numpy as np

from repro.cluster.shard import partition_heads
from repro.core import TokenPickerConfig
from repro.hw.serving import ServingSimulator, tokens_per_second
from repro.model.config import get_model_config
from repro.serving.engine import GenerationRequest, ServingEngine

N_HEADS, HEAD_DIM = 4, 64
PROMPT, MAX_NEW, BATCH = 96, 12, 6
SHARD_WIDTHS = (1, 2, 3, 4)  # 3 exercises the uneven 2/1/1 head split


def _requests(rng: np.random.Generator):
    for rid in range(BATCH * 2):
        prompt = PROMPT + int(rng.integers(0, PROMPT // 4))
        yield GenerationRequest(
            request_id=rid,
            prompt_keys=rng.normal(size=(N_HEADS, prompt, HEAD_DIM)),
            prompt_values=rng.normal(size=(N_HEADS, prompt, HEAD_DIM)),
            max_new_tokens=MAX_NEW,
            seed=rid + 1,
        )


def _drain(shards: int):
    engine = ServingEngine(
        TokenPickerConfig(threshold=2e-3),
        max_batch_size=BATCH,
        capacity_tokens=BATCH * 2 * (PROMPT * 2 + MAX_NEW + 16),
        seed=0,
        shards=shards,
    )
    for request in _requests(np.random.default_rng(0)):
        engine.submit(request)
    reports = engine.run_until_drained()
    return engine, reports


def _traffic(engine: ServingEngine) -> dict:
    return {
        done.request_id: (done.stats.counter.k_bits, done.stats.counter.v_bits)
        for done in engine.completed
    }


def main() -> None:
    config = TokenPickerConfig(threshold=2e-3)
    model = get_model_config("gpt2-medium")
    sim = ServingSimulator(
        model, context_length=PROMPT + MAX_NEW, config=config
    )
    # one layer's 4 heads stand in for the full stack's traffic
    scale = (model.n_heads / N_HEADS) * model.n_layers

    print("=== head partitions ===")
    for shards in SHARD_WIDTHS:
        ranges = partition_heads(N_HEADS, shards)
        pretty = ", ".join(f"[{lo},{hi})" for lo, hi in ranges)
        print(f"  K={shards}: heads -> {pretty}")

    print("\n=== same workload at every tensor-parallel width ===")
    anchor = None
    for shards in SHARD_WIDTHS:
        engine, reports = _drain(shards)
        traffic = _traffic(engine)
        if anchor is None:
            anchor = traffic
            tag = "anchor"
        else:
            tag = (
                "bit-identical" if traffic == anchor else "DIVERGED"
            )
        busiest = max(reports, key=lambda r: r.batch_size)
        result = sim.step_from_engine(busiest, engine_heads=N_HEADS)
        tokens = sum(r.tokens_generated for r in reports)
        line = (
            f"  K={shards}: {tokens} tokens [{tag}], "
            f"modelled {tokens_per_second(result):,.0f} tok/s"
        )
        if shards > 1:
            shipped = engine.allgather_bits_total * scale / 8
            full = engine.allgather_baseline_bits_total * scale / 8
            line += (
                f", all-gather {shipped / tokens:,.0f} B/token "
                f"(vs {full / tokens:,.0f} unpruned, "
                f"{full / shipped:.0f}x less wire), "
                f"straggler {result.attention_cycles:,} + "
                f"all-gather {result.allgather_cycles:,} cycles"
            )
        print(line)

    print(
        "\nkept fraction "
        f"{engine.counter.keep_fraction:.4f}: only kept (head, token) "
        "pairs cross the modelled interconnect, so Eq. 5's certified "
        "pruning shrinks the all-gather by the same factor as KV DRAM "
        "traffic."
    )
    print(
        "cluster composition: tokenpicker serve-cluster --replicas 2 "
        "--shards 2 --profile"
    )


if __name__ == "__main__":
    main()
