"""Async streaming frontend: deadlines, overload control, fault injection.

Demonstrates the `repro.serving.frontend` + `repro.cluster.faults` layers:

1. an :class:`AsyncStreamingFrontend` wraps a serving engine behind an
   asyncio API — requests are admitted continuously and every generated
   token is pushed to its caller as a :class:`TokenEvent` the step it is
   produced;
2. a request is **cancelled** mid-stream and another carries a wall-clock
   **deadline**; both release their KV blocks the moment they terminate;
3. a sustained-overload burst trips the SLO-aware controller: modelled
   inter-token p95 breaches degrade the certified keep threshold in
   rungs (cheaper steps, bounded-error pruning) before any request is
   shed, then sheds with a retry-after hint, then recovers with
   hysteresis once the backlog clears;
4. a deterministic chaos schedule kills and revives cluster replicas
   mid-flight; harvested requests are resubmitted with capped
   exponential backoff and the run completes **bit-identically** to a
   fault-free rerun.

Run:  python examples/streaming_frontend.py
"""

import asyncio

import numpy as np

from repro.cluster import ClusterRouter, FaultInjector, fault_schedule
from repro.core import TokenPickerConfig
from repro.hw.serving import ServingSimulator
from repro.model.config import get_model_config
from repro.serving import (
    AsyncStreamingFrontend,
    RequestState,
    ServingEngine,
    SLOConfig,
    ShedError,
)
from repro.workloads import failover_trace, sustained_overload_trace

N_HEADS, HEAD_DIM = 4, 64
CONFIG = TokenPickerConfig(threshold=2e-3)


def _engine(**kw) -> ServingEngine:
    kw.setdefault("max_batch_size", 4)
    kw.setdefault("capacity_tokens", 4096)
    kw.setdefault("seed", 0)
    return ServingEngine(CONFIG, **kw)


async def streaming_demo() -> None:
    print("=== per-token streaming, cancellation, deadlines ===")
    rng = np.random.default_rng(0)
    trace = sustained_overload_trace(
        rng, n_heads=N_HEADS, head_dim=HEAD_DIM,
        n_requests=6, prompt_tokens=32, max_new_tokens=12,
    )
    async with AsyncStreamingFrontend(_engine()) as frontend:
        streams = [await frontend.submit(req) for _, req in trace[:4]]
        # one request with a (generous) deadline, one doomed to cancel
        deadline = await frontend.submit(trace[4][1], deadline_ms=60_000)
        victim = await frontend.submit(trace[5][1])
        victim.cancel()

        async for event in streams[0]:
            if event.ordinal < 3:
                print(
                    f"  stream 0 token {event.ordinal} at engine step "
                    f"{event.step_index} (context {event.context_length}, "
                    f"kept {event.kept_tokens})"
                )
        results = [await s.drain() for s in streams[1:]]
        results += [await deadline.drain(), await victim.drain()]
    states = [r.state.value for r in [streams[0].result] + results]
    print(f"  terminal states: {states}")
    assert victim.result.state == RequestState.CANCELLED


async def overload_demo() -> None:
    print("\n=== SLO-aware overload control ===")
    rng = np.random.default_rng(1)
    simulator = ServingSimulator(
        get_model_config("gpt2-medium"), context_length=96, config=CONFIG
    )
    slo = SLOConfig(p95_inter_token_ms=1.5, window_steps=4)
    frontend = AsyncStreamingFrontend(
        _engine(max_batch_size=2), slo=slo, simulator=simulator
    )
    trace = sustained_overload_trace(
        rng, n_heads=N_HEADS, head_dim=HEAD_DIM,
        n_requests=16, arrivals_per_step=2,
        prompt_tokens=48, max_new_tokens=16,
    )
    shed = 0
    async with frontend:
        streams = []
        for _, request in trace:
            try:
                streams.append(await frontend.submit(request))
            except ShedError as exc:
                shed += 1
                print(f"  shed (retry after {exc.retry_after_steps} steps)")
            # yield so the engine loop interleaves with admission
            await asyncio.sleep(0.002)
        for stream in streams:
            await stream.drain()
    controller = frontend.controller
    for sample in controller.timeline:
        print(
            f"  window @ step {sample.step:3d}: p95 {sample.p95_ms:6.2f} ms"
            f"  degrade level {sample.level}"
            f"{'  SHEDDING' if sample.shedding else ''}"
        )
    peak = min(
        CONFIG.threshold
        * slo.degrade_factor
        ** max(s.level for s in controller.timeline),
        slo.max_threshold,
    )
    print(
        f"  {len(streams)} served, {shed} shed; peak threshold "
        f"{peak:g} (base {CONFIG.threshold:g})"
    )


def chaos_demo() -> None:
    print("\n=== deterministic fault injection on a 3-replica cluster ===")

    def run(with_faults: bool) -> FaultInjector:
        router = ClusterRouter(
            3, CONFIG, max_batch_size=2, capacity_tokens=1024, seed=0
        )
        schedule = fault_schedule(0, 3, n_kills=2) if with_faults else []
        injector = FaultInjector(router, schedule)
        injector.run_trace(
            failover_trace(
                np.random.default_rng(2), n_heads=N_HEADS,
                head_dim=HEAD_DIM, n_requests=10,
            )
        )
        return injector

    clean, faulted = run(False), run(True)

    def traffic(inj: FaultInjector) -> dict:
        return {
            key: (done.stats.counter.k_bits, done.stats.counter.v_bits)
            for key, done in inj.outputs.items()
        }

    s = faulted.stats
    print(
        f"  {s.kills} kills, {s.revives} revives, {s.spikes} latency "
        f"spikes; {s.retries} retries "
        f"({s.swap_resumes} swap-resumes, {s.re_prefills} re-prefills, "
        f"{s.requeues} requeues)"
    )
    identical = traffic(clean) == traffic(faulted)
    print(
        f"  {len(faulted.outputs)}/10 completed, bit-identical to the "
        f"fault-free run: {identical}"
    )
    assert identical


def main() -> None:
    asyncio.run(streaming_demo())
    asyncio.run(overload_demo())
    chaos_demo()


if __name__ == "__main__":
    main()
