"""The pruning-quality frontier: threshold vs PPL vs memory traffic.

Sweeps the prune threshold on the reference LM and prints the trade-off
curve the paper's named configurations (ToPick / ToPick-0.3 / ToPick-0.5)
are three points of.  Also demonstrates the calibration utility that turns
a PPL budget into a threshold.

Run:  python examples/threshold_sweep.py
"""

import numpy as np

from repro.core import TokenPickerConfig
from repro.core.thresholds import calibrate_threshold
from repro.eval.perplexity import (
    PPLDeltaMetric,
    backend_perplexity_and_traffic,
    corpus_perplexity,
)
from repro.eval.pretrained import get_reference_model, reference_corpus
from repro.model.attention import TokenPickerBackend
from repro.utils.tables import format_table


def main() -> None:
    model = get_reference_model()
    _, eval_tokens = reference_corpus()
    ref = corpus_perplexity(model, eval_tokens, window=192, max_windows=3)
    print(f"exact-attention reference PPL: {ref.ppl:.3f}\n")

    rows = []
    for thr in np.geomspace(3e-4, 3e-2, 9):
        result, counter = backend_perplexity_and_traffic(
            model, eval_tokens,
            lambda: TokenPickerBackend(TokenPickerConfig(threshold=thr)),
            window=192, max_windows=3,
        )
        rows.append(
            [
                f"{thr:.1e}",
                f"{result.ppl:.3f}",
                f"{result.ppl - ref.ppl:+.3f}",
                f"{counter.keep_fraction:.1%}",
                f"{counter.v_pruning_ratio:.1f}x",
                f"{counter.k_reduction:.2f}x",
                f"{counter.total_reduction:.2f}x",
            ]
        )
    print(
        format_table(
            rows,
            headers=["threshold", "PPL", "dPPL", "kept", "V ratio", "K red", "total"],
            title="threshold sweep (reference LM, held-out corpus)",
        )
    )

    print("\ncalibrating a threshold for a +0.3 PPL budget...")
    metric = PPLDeltaMetric(model, eval_tokens, window=192, max_windows=2)
    result = calibrate_threshold(metric, budget=0.3, iterations=6)
    print(
        f"  -> thr = {result.threshold:.2e} "
        f"(measured dPPL {result.metric_value:+.3f}, "
        f"{result.evaluations} evaluations)"
    )


if __name__ == "__main__":
    main()
