"""ToPick accelerator simulation: baseline vs estimation-only vs OoO.

Runs the cycle-approximate hardware model on a GPT2-XL-shaped generation
workload (context 1024) and prints per-variant cycles, DRAM traffic, and
the energy breakdown of Fig. 10(b) — including the in-order ablation that
shows why the Scoreboard/out-of-order engine is necessary.

Run:  python examples/accelerator_simulation.py
"""

from repro.core import TokenPickerConfig
from repro.hw import ToPickAccelerator
from repro.hw.accelerator import VARIANTS
from repro.utils.tables import format_table
from repro.workloads import sample_workload


def main() -> None:
    context = 1024
    workload = sample_workload(context, head_dim=64, n_instances=6, seed=3)
    acc = ToPickAccelerator(config=TokenPickerConfig(threshold=2e-3))

    rows = []
    baseline = None
    for variant in VARIANTS:
        r = acc.run_workload(workload, variant=variant)
        if variant == "baseline":
            baseline = r
        e = r.energy()
        be = baseline.energy()
        rows.append(
            [
                variant,
                r.cycles,
                f"{baseline.cycles / r.cycles:.2f}x",
                f"{r.dram_bytes / 1024:.0f} KiB",
                f"{r.access_reduction:.2f}x",
                f"{e.total / be.total:.2f}",
                f"{e.dram / be.total:.2f}/"
                f"{e.onchip_buffer / be.total:.2f}/"
                f"{e.compute / be.total:.2f}",
            ]
        )

    print(
        format_table(
            rows,
            headers=["variant", "cycles", "speedup", "DRAM", "access red.",
                     "energy (norm)", "dram/buf/comp"],
            title=f"ToPick accelerator, context {context}, "
                  f"{len(workload)} attention instances",
        )
    )
    print(
        "\nnotes: v_only = probability estimation with full K streaming "
        "(paper's 1.73x design point);\n"
        "topick = + out-of-order on-demand K chunks; topick_inorder = "
        "the blocking ablation that motivates the Scoreboard."
    )


if __name__ == "__main__":
    main()
