"""Fig. 9-style comparison against SpAtten on GPT2-Medium.

Sweeps the paper's prompt/ending configurations and prints the normalized
K/V access of SpAtten (with and without the fine-tuned schedule) versus
Token-Picker at a +0.5 PPL-style threshold — illustrating why adaptive
per-instance pruning beats fixed keep ratios except at very long prompts.

Run:  python examples/spatten_comparison.py
"""

from repro.eval.experiments.fig9 import FIG9_CELLS, run_fig9
from repro.utils.tables import format_table


def main() -> None:
    # A fixed threshold keeps the example self-contained (no LM training);
    # `tokenpicker fig9` uses the calibrated +0.5 PPL threshold instead.
    result = run_fig9(threshold=8e-3, n_instances=4)
    print(result.format())

    rows = []
    for cell in result.cells:
        rows.append(
            [
                f"{cell.prompt_len}-{cell.end_len}",
                f"{cell.k_normalized['spatten']:.2f}",
                f"{cell.k_normalized['topick-0.5']:.2f}",
                f"{cell.v_normalized['spatten']:.2f}",
                f"{cell.v_normalized['topick-0.5']:.2f}",
            ]
        )
    print()
    print(
        format_table(
            rows,
            headers=["prompt-end", "K SpAtten", "K ToPick", "V SpAtten", "V ToPick"],
            title="K / V access split (normalized to baseline)",
        )
    )
    print(
        "\nSpAtten's cascade shines on long prompts (768-1024: tokens pruned "
        "early stay pruned);\nToken-Picker wins everywhere else because it "
        "adapts to each instance without fine-tuning."
    )


if __name__ == "__main__":
    main()
