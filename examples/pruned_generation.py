"""Text generation with Token-Picker attention on the NumPy LM.

Trains a small LM on the synthetic corpus (cached after the first run),
then generates with (a) exact attention and (b) Token-Picker pruned
attention at a calibrated threshold — comparing the produced tokens, the
perplexity, and the measured KV traffic of the *same* run.

Run:  python examples/pruned_generation.py
"""

import numpy as np

from repro.core import TokenPickerConfig
from repro.eval.perplexity import backend_perplexity_and_traffic, corpus_perplexity
from repro.eval.pretrained import get_reference_model, reference_corpus
from repro.model.attention import TokenPickerBackend


def main() -> None:
    print("loading / training the reference LM (cached after first run)...")
    model = get_reference_model()
    _, eval_tokens = reference_corpus()

    prompt = np.asarray(eval_tokens[:32])
    n_new = 48

    print("\n=== Greedy generation ===")
    exact_out = model.generate(prompt, n_new)
    threshold = 8e-3
    backend = TokenPickerBackend(TokenPickerConfig(threshold=threshold))
    pruned_out = model.generate(prompt, n_new, backend=backend)
    agreement = float(np.mean(exact_out[len(prompt):] == pruned_out[len(prompt):]))
    print(f"  exact : {exact_out[len(prompt):].tolist()}")
    print(f"  pruned: {pruned_out[len(prompt):].tolist()}")
    print(f"  token agreement: {agreement:.0%} at thr={threshold:g}")
    c = backend.counter
    print(f"  traffic during pruned generation: "
          f"K x{c.k_reduction:.2f} less, V x{c.v_pruning_ratio:.1f} less")

    print("\n=== Perplexity and traffic on held-out text ===")
    ref = corpus_perplexity(model, eval_tokens, window=192, max_windows=3)
    print(f"  exact attention      : PPL {ref.ppl:.3f}")
    for thr in (2e-3, 8e-3, 2e-2):
        result, counter = backend_perplexity_and_traffic(
            model, eval_tokens,
            lambda: TokenPickerBackend(TokenPickerConfig(threshold=thr)),
            window=192, max_windows=3,
        )
        print(
            f"  token-picker {thr:7.0e}: PPL {result.ppl:.3f} "
            f"(+{result.ppl - ref.ppl:.3f})  keep {counter.keep_fraction:6.1%}  "
            f"V x{counter.v_pruning_ratio:.1f}  K x{counter.k_reduction:.2f}"
        )


if __name__ == "__main__":
    main()
