"""Continuous-batching serving: N sequences, one fused decode step.

Demonstrates the `repro.serving` subsystem end to end:

1. requests with ragged prompt lengths stream into the engine over time;
2. the scheduler admits them whenever a batch slot and KV-pool headroom
   exist, and retires them as they finish — the batch re-fills
   continuously instead of draining in lockstep;
3. every step runs ONE fused ragged-batch Token-Picker kernel across all
   active sequences, with pruning decisions bit-identical to stepping
   each sequence alone (verified below against per-sequence sessions);
4. the measured per-sequence traffic feeds the hardware model, closing
   the paper's Fig. 2 -> Fig. 10 loop with real ragged traffic;
5. chunked prefill (``prefill_budget_tokens``, the CLI's
   ``--prefill-budget``) bounds each step's token work — decode first,
   leftover budget to prompt chunks — so a long prompt no longer stalls
   co-resident decodes for one monolithic ingest, while outputs stay
   bit-identical (scales freeze from the full prompt before chunk one).

Run:  python examples/continuous_batching.py
"""

import time

import numpy as np

from repro.core import TokenPickerConfig
from repro.core.session import TokenPickerSession
from repro.eval.batching import measured_batch_point
from repro.hw.serving import ServingSimulator, tokens_per_second
from repro.model.config import get_model_config
from repro.serving import (
    GenerationRequest,
    ServingEngine,
    replayable_step_source,
)

N_HEADS, HEAD_DIM = 4, 64


def make_request(rng: np.random.Generator, prompt_tokens: int, max_new: int):
    """A request with a replayable decode stream (so sessions can replay it)."""
    keys = rng.normal(size=(N_HEADS, prompt_tokens, HEAD_DIM))
    values = rng.normal(size=(N_HEADS, prompt_tokens, HEAD_DIM))
    source, stream = replayable_step_source(rng, N_HEADS, HEAD_DIM, max_new)
    request = GenerationRequest(
        prompt_keys=keys,
        prompt_values=values,
        max_new_tokens=max_new,
        step_source=source,
    )
    return request, stream


def replay_with_sessions(config, requests_and_streams):
    """Reference: one per-sequence session per request, stepped in a loop."""
    sessions = []
    for request, stream in requests_and_streams:
        session = TokenPickerSession(config)
        session.observe_prompt(request.prompt_keys, request.prompt_values)
        keys, values = request.prompt_keys, request.prompt_values
        for q, k, v in stream:
            keys = np.concatenate([keys, k[:, None, :]], axis=1)
            values = np.concatenate([values, v[:, None, :]], axis=1)
            session.step(q, keys, values)
        sessions.append(session)
    return sessions


def main() -> None:
    rng = np.random.default_rng(0)
    config = TokenPickerConfig(threshold=2e-3)
    engine = ServingEngine(
        config, max_batch_size=8, capacity_tokens=4096, seed=0
    )

    print("=== continuous admission / retirement ===")
    pairs = []
    for i in range(16):
        prompt = int(rng.integers(64, 160))
        pair = make_request(rng, prompt, max_new=int(rng.integers(4, 10)))
        pairs.append(pair)
        engine.submit(pair[0])
    reports = engine.run_until_drained()
    for report in reports:
        marks = []
        if report.admitted:
            marks.append(f"+{len(report.admitted)} admitted")
        if report.retired:
            marks.append(f"-{len(report.retired)} retired")
        print(
            f"step {report.step_index:2d}: batch={report.batch_size:2d} "
            f"pack-util={report.ragged_utilization:.2f} "
            + " ".join(marks)
        )
    print(
        f"\n{len(engine.completed)} requests served in {len(reports)} steps, "
        f"peak concurrency {engine.peak_concurrency}, "
        f"KV-bit reduction {engine.counter.total_reduction:.2f}x"
    )

    print("\n=== arena fast path: per-step phase breakdown ===")
    busy = [r for r in reports if r.batch_size]
    for phase in ("pack", "score", "prune", "unpack"):
        mean_ms = 1e3 * sum(
            r.phase_seconds.get(phase, 0.0) for r in busy
        ) / len(busy)
        print(f"  {phase:<6} {mean_ms:6.3f} ms/step")

    print("\n=== fused step == looped sessions (bit-identical) ===")
    t0 = time.perf_counter()
    sessions = replay_with_sessions(config, pairs)
    looped = time.perf_counter() - t0
    for (request, _), session in zip(pairs, sessions):
        done = next(
            c for c in engine.completed if c.request_id == request.request_id
        )
        assert done.stats.counter.k_bits == session.counter.k_bits
        assert done.stats.counter.v_bits == session.counter.v_bits
        # clip accounting differs by design: the pooled engine checks each
        # element once at cache entry, the session rescans the full K/V
        assert done.stats.clip_events <= session.clip_events
    print(
        f"per-request traffic identical; looped sessions took {looped:.2f}s "
        "for what the engine fused into one kernel call per step"
    )

    print("\n=== measured traffic -> hardware model ===")
    model = get_model_config("gpt2-medium")
    sim = ServingSimulator(model, context_length=160, config=config)
    full = max(reports, key=lambda r: r.batch_size)
    ours = sim.step_from_engine(full, engine_heads=N_HEADS)
    base = sim.step_from_engine(full, "baseline", engine_heads=N_HEADS)
    point = measured_batch_point(
        model,
        [v.stats for v in full.per_sequence.values()],
        context_length=160,
        engine_heads=N_HEADS,
    )
    print(
        f"B={full.batch_size} decode step: {base.total_cycles} -> "
        f"{ours.total_cycles} cycles "
        f"({base.total_cycles / ours.total_cycles:.2f}x), "
        f"{tokens_per_second(ours):,.0f} tokens/s"
    )
    print(
        f"traffic-limited speedup {point.step_speedup:.2f}x at "
        f"KV fraction {point.kv_fraction:.2f}"
    )

    print("\n=== chunked prefill: --prefill-budget bounds the stall ===")
    # a long prompt lands while short requests are decoding; compare the
    # worst single-step prompt ingest with and without a budget
    for budget in (None, 48):
        rng2 = np.random.default_rng(7)
        engine2 = ServingEngine(
            config,
            max_batch_size=8,
            capacity_tokens=4096,
            seed=7,
            prefill_budget_tokens=budget,
        )
        for _ in range(4):
            engine2.submit(make_request(rng2, int(rng2.integers(24, 48)), 10)[0])
        for _ in range(2):  # shorts settle into steady decode
            engine2.step()
        engine2.submit(make_request(rng2, 512, 2)[0])  # the stall-maker
        reports2 = []
        while engine2.n_pending or engine2.n_active:
            reports2.append(engine2.step())
        worst = max(r.prefill_tokens for r in reports2)
        label = "unbounded" if budget is None else f"budget {budget}"
        print(
            f"  {label:>10}: worst step ingested {worst:3d} prompt tokens "
            f"in one go ({engine2.prefill_chunks_total} chunks total, "
            f"TTFT measured at the first *decoded* token)"
        )


if __name__ == "__main__":
    main()
