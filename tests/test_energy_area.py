"""Tests for the energy integration and Table 2 area/power model."""

import numpy as np
import pytest

from repro.hw.area import (
    K_PRUNE_MODULES,
    MODULE_AREA_POWER,
    V_PRUNE_MODULES,
    area_power_report,
)
from repro.hw.energy import (
    EnergyBreakdown,
    EnergyParams,
    EventCounts,
    integrate_energy,
)


class TestEnergyIntegration:
    def test_zero_counts_zero_energy(self):
        e = integrate_energy(EventCounts())
        assert e.total == 0.0

    def test_linear_in_counts(self):
        c1 = EventCounts(dram_bits=1000, macs=500, sram_bytes=200)
        c2 = EventCounts(dram_bits=2000, macs=1000, sram_bytes=400)
        e1, e2 = integrate_energy(c1), integrate_energy(c2)
        assert np.isclose(e2.total, 2 * e1.total)

    def test_category_assignment(self):
        p = EnergyParams()
        e = integrate_energy(EventCounts(dram_bits=10), p)
        assert e.dram == 10 * p.dram_pj_per_bit
        assert e.onchip_buffer == 0 and e.compute == 0
        e = integrate_energy(EventCounts(scoreboard_accesses=4), p)
        assert e.onchip_buffer == 4 * p.scoreboard_pj_per_access
        e = integrate_energy(EventCounts(exp_evals=3, margin_gens=2), p)
        assert np.isclose(e.compute, 3 * p.exp_pj + 2 * p.margin_pj)

    def test_merged_counts(self):
        a = EventCounts(dram_bits=5, macs=1)
        b = EventCounts(dram_bits=7, exp_evals=2)
        m = a.merged(b)
        assert m.dram_bits == 12 and m.macs == 1 and m.exp_evals == 2

    def test_normalised_to_baseline(self):
        base = EnergyBreakdown(dram=80.0, onchip_buffer=15.0, compute=5.0)
        ours = EnergyBreakdown(dram=30.0, onchip_buffer=8.0, compute=4.0)
        n = ours.normalised_to(base)
        assert np.isclose(n.dram + n.onchip_buffer + n.compute, 42.0 / 100.0)

    def test_normalise_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            EnergyBreakdown(1, 1, 1).normalised_to(EnergyBreakdown(0, 0, 0))

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            EnergyParams(dram_pj_per_bit=-1.0)

    def test_dram_dominates_baseline_workload(self):
        """The generation phase must be DRAM-energy dominated (Sec. 2)."""
        # a baseline-like counter profile: bytes through DRAM and SRAM,
        # with matched compute
        c = EventCounts(
            dram_bits=96_000 * 8,
            sram_bytes=2 * 96_000,
            macs=3 * 1024 * 64,
            exp_evals=2 * 1024,
        )
        e = integrate_energy(c)
        assert e.dram > 0.5 * e.total


class TestTable2:
    def test_paper_totals(self):
        """Totals should match Table 2 (8.593 mm^2, 1492.78 mW) closely."""
        rep = area_power_report(n_lanes=16)
        # PE lane subtotal from the paper: 2.518 mm^2 / 426.76 mW... the
        # paper's lane row bundles extra glue; our module sum must land
        # within 15% of the published totals.
        assert abs(rep.total_area - 8.593) / 8.593 < 0.15
        assert abs(rep.total_power - 1492.78) / 1492.78 < 0.15

    def test_v_module_overheads_match_paper(self):
        """Margin Gen + DAG + PEC: ~1.0% area, ~1.3% power (Sec. 5.2.3)."""
        rep = area_power_report()
        assert 0.005 < rep.v_module_area_overhead < 0.02
        assert 0.007 < rep.v_module_power_overhead < 0.025

    def test_k_module_overheads_match_paper(self):
        """Scoreboard + RPDU: ~4.9% area, ~5.6% power (Sec. 5.2.3)."""
        rep = area_power_report()
        assert 0.03 < rep.k_module_area_overhead < 0.07
        assert 0.04 < rep.k_module_power_overhead < 0.08

    def test_rows_structure(self):
        rows = area_power_report().rows()
        names = [r[0] for r in rows]
        assert names[0] == "PE Lane x 16"
        assert names[-1] == "Total"
        assert any("scoreboard" in n for n in names)

    def test_invalid_lane_count(self):
        with pytest.raises(ValueError):
            area_power_report(0)

    def test_module_table_complete(self):
        for name in V_PRUNE_MODULES + K_PRUNE_MODULES:
            assert name in MODULE_AREA_POWER

    def test_onchip_buffer_dominates_power(self):
        """Table 2: the 384 KB of SRAM burns ~70% of chip power."""
        rep = area_power_report()
        buffer_power = MODULE_AREA_POWER["onchip_buffer"][1]
        assert buffer_power / rep.total_power > 0.6
