"""Tests for the continuous-batching serving engine."""

import numpy as np
import pytest

from repro.core import TokenPickerConfig
from repro.core.session import TokenPickerSession
from repro.eval.batching import measured_batch_point
from repro.model.config import get_model_config
from repro.serving import (
    GenerationRequest,
    RequestState,
    Scheduler,
    ServingEngine,
    replayable_step_source,
    synthetic_request,
)

CFG = TokenPickerConfig(threshold=2e-3)


def _engine(**kw):
    defaults = dict(max_batch_size=8, capacity_tokens=4096, seed=0)
    defaults.update(kw)
    return ServingEngine(CFG, **defaults)


def _replayable_request(rng, n_heads=2, prompt=48, head_dim=16, max_new=4):
    """Request whose decode stream is recorded, so sessions can replay it."""
    keys = rng.normal(size=(n_heads, prompt, head_dim))
    values = rng.normal(size=(n_heads, prompt, head_dim))
    source, stream = replayable_step_source(rng, n_heads, head_dim, max_new)
    request = GenerationRequest(
        prompt_keys=keys,
        prompt_values=values,
        max_new_tokens=max_new,
        step_source=source,
    )
    return request, stream


class TestLifecycle:
    def test_submit_step_retire(self):
        rng = np.random.default_rng(0)
        engine = _engine()
        rid = engine.submit(
            synthetic_request(rng, 2, prompt_tokens=32, head_dim=16, max_new_tokens=3)
        )
        assert engine.n_pending == 1
        reports = engine.run_until_drained()
        assert len(reports) == 3
        assert engine.n_active == 0 and engine.n_pending == 0
        assert len(engine.completed) == 1
        done = engine.completed[0]
        assert done.request_id == rid
        assert done.generated_tokens == 3
        assert done.stats.queue_delay_steps == 0
        assert done.stats.service_steps == 2
        assert done.stats.counter.tokens_seen > 0
        assert engine.pool.blocks_in_use == 0

    def test_continuous_admission_and_fifo_order(self):
        rng = np.random.default_rng(1)
        engine = _engine(max_batch_size=2)
        # staggered lengths: sequences retire one at a time, so freed
        # slots refill while the other sequence keeps decoding
        ids = [
            engine.submit(
                synthetic_request(rng, 2, 16, 16, max_new_tokens=new)
            )
            for new in (2, 5, 4, 3, 2)
        ]
        first = engine.step()
        assert first.admitted == ids[:2]  # FIFO
        reports = engine.run_until_drained()
        # continuous refill: retirements and admissions share a step, the
        # batch never drains to zero between waves
        refills = [r for r in reports if r.admitted and r.retired]
        assert refills, "no step both retired and admitted sequences"
        assert all(
            r.batch_size > 0 for r in [first] + reports[:-1]
        )
        assert len(engine.completed) == 5
        assert [c.request_id for c in engine.completed[:2]] == ids[:2]
        waits = {c.request_id: c.stats.queue_delay_steps for c in engine.completed}
        assert waits[ids[0]] == 0
        assert waits[ids[4]] > 0  # queued behind the first batch

    def test_admission_blocked_by_pool_capacity(self):
        rng = np.random.default_rng(2)
        # room for one request's lifetime footprint only
        engine = _engine(max_batch_size=8, capacity_tokens=48, block_size=8)
        for _ in range(2):
            engine.submit(synthetic_request(rng, 2, 32, 16, max_new_tokens=4))
        report = engine.step()
        assert len(report.admitted) == 1  # second waits for blocks, not slots
        assert engine.n_pending == 1
        engine.run_until_drained()
        assert len(engine.completed) == 2

    def test_admission_reserves_lifetime_growth(self):
        """Admission must account for admitted sequences' future tokens,
        not just blocks already written — otherwise decode can exhaust the
        pool mid-flight."""
        rng = np.random.default_rng(10)
        # 4 blocks; each request needs 3 blocks over its lifetime
        engine = _engine(max_batch_size=8, capacity_tokens=64, block_size=16)
        engine.submit(synthetic_request(rng, 2, 16, 16, max_new_tokens=17))
        engine.submit(synthetic_request(rng, 2, 17, 16, max_new_tokens=30))
        report = engine.step()
        assert len(report.admitted) == 1  # second would overcommit blocks
        engine.run_until_drained()  # must never raise PoolExhausted
        assert len(engine.completed) == 2

    def test_oversized_request_rejected_at_submit(self):
        rng = np.random.default_rng(11)
        engine = _engine(capacity_tokens=64, block_size=16)
        with pytest.raises(ValueError, match="pool holds"):
            engine.submit(
                synthetic_request(rng, 2, 100, 16, max_new_tokens=1)
            )
        assert engine.n_pending == 0

    def test_sustains_32_concurrent_sequences(self):
        """Acceptance: >= 32 concurrent sequences with continuous
        admission/retirement through one fused step per iteration."""
        rng = np.random.default_rng(3)
        engine = _engine(max_batch_size=32, capacity_tokens=32 * 48)
        for _ in range(40):
            engine.submit(synthetic_request(rng, 2, 24, 16, max_new_tokens=4))
        reports = engine.run_until_drained()
        assert engine.peak_concurrency == 32
        assert max(r.batch_size for r in reports) == 32
        assert len(engine.completed) == 40
        assert engine.pool.blocks_in_use == 0
        assert engine.counter.total_reduction > 1.0

    def test_ragged_utilization_reflects_context_spread(self):
        rng = np.random.default_rng(9)
        engine = _engine(max_batch_size=2)
        engine.submit(synthetic_request(rng, 2, 16, 16, max_new_tokens=2))
        engine.submit(synthetic_request(rng, 2, 64, 16, max_new_tokens=2))
        report = engine.step()
        # contexts 17 and 65 after the first decode token
        assert report.ragged_utilization == pytest.approx((17 + 65) / (2 * 65))

    def test_arena_fast_path_and_phase_breakdown(self):
        """Pooled decode runs on the float32 digit arena and every busy
        step reports the pack/score/prune/unpack wall-clock split."""
        rng = np.random.default_rng(12)
        engine = _engine()
        engine.submit(synthetic_request(rng, 2, 32, 16, max_new_tokens=3))
        reports = engine.run_until_drained()
        assert engine.pool.k_arena.dtype == np.float32
        busy = [r for r in reports if r.batch_size]
        assert busy
        for report in busy:
            assert set(report.phase_seconds) >= {
                "pack", "score", "prune", "unpack"
            }
            assert all(v >= 0.0 for v in report.phase_seconds.values())

    def test_empty_step_is_admission_tick(self):
        engine = _engine()
        report = engine.step()
        assert report.batch_size == 0 and not report.admitted
        assert engine.step_index == 1

    def test_run_until_drained_guard(self):
        rng = np.random.default_rng(4)
        engine = _engine()
        engine.submit(synthetic_request(rng, 2, 16, 16, max_new_tokens=5))
        with pytest.raises(RuntimeError):
            engine.run_until_drained(max_steps=2)


class TestEquivalenceWithSessions:
    def test_fused_steps_match_looped_sessions_exactly(self):
        """The engine's fused ragged step must reproduce, bit for bit, the
        pruning decisions and traffic stats of per-sequence sessions."""
        rng = np.random.default_rng(5)
        config = TokenPickerConfig(threshold=1e-2)
        engine = ServingEngine(config, max_batch_size=6, capacity_tokens=4096)
        pairs = [
            _replayable_request(rng, prompt=int(rng.integers(16, 80)), max_new=5)
            for _ in range(6)
        ]
        for request, _ in pairs:
            engine.submit(request)

        kept_per_request = {}
        for report in engine.run_until_drained():
            for sid, view in report.per_sequence.items():
                kept_per_request.setdefault(view.request_id, []).append(
                    report.results[sid].kept
                )

        for request, stream in pairs:
            session = TokenPickerSession(config)
            session.observe_prompt(request.prompt_keys, request.prompt_values)
            keys, values = request.prompt_keys, request.prompt_values
            for step, (q, k, v) in enumerate(stream):
                keys = np.concatenate([keys, k[:, None, :]], axis=1)
                values = np.concatenate([values, v[:, None, :]], axis=1)
                result = session.step(q, keys, values)
                assert np.array_equal(
                    kept_per_request[request.request_id][step], result.kept
                )
            done = next(
                c
                for c in engine.completed
                if c.request_id == request.request_id
            )
            assert done.stats.counter.k_bits == session.counter.k_bits
            assert done.stats.counter.v_bits == session.counter.v_bits
            assert done.stats.counter.tokens_seen == session.counter.tokens_seen
            assert done.stats.counter.tokens_kept == session.counter.tokens_kept
            # clip semantics differ by design: the pooled engine checks each
            # element once (when it enters the cache), the external-KV
            # session rescans the full provided K/V every step
            assert done.stats.clip_events <= session.clip_events


class TestTrafficConsumers:
    @pytest.fixture(scope="class")
    def drained(self):
        rng = np.random.default_rng(6)
        engine = _engine(max_batch_size=8)
        for _ in range(8):
            engine.submit(synthetic_request(rng, 4, 64, 16, max_new_tokens=3))
        reports = engine.run_until_drained()
        return engine, max(reports, key=lambda r: r.batch_size)

    def test_step_from_engine(self, drained):
        from repro.hw.serving import ServingSimulator

        engine, full = drained
        sim = ServingSimulator(get_model_config("gpt2-medium"), 128, config=CFG)
        ours = sim.step_from_engine(full, engine_heads=4)
        base = sim.step_from_engine(full, "baseline", engine_heads=4)
        assert ours.batch_size == full.batch_size == 8
        assert ours.weight_cycles == base.weight_cycles
        assert 0 < ours.attention_cycles < base.attention_cycles
        # ragged per-sequence traffic, not one mean: sequences differ
        bits = [v.stats.total_bits_fetched for v in full.per_sequence.values()]
        assert len(set(bits)) > 1

    def test_measured_batch_point(self, drained):
        engine, full = drained
        stats = [v.stats for v in full.per_sequence.values()]
        point = measured_batch_point(
            get_model_config("gpt2-medium"),
            stats,
            context_length=128,
            engine_heads=4,
        )
        assert point.batch_size == 8
        assert 1.0 < point.step_speedup
        assert point.kv_bytes > point.kv_bytes_pruned
        with pytest.raises(ValueError):
            measured_batch_point(get_model_config("gpt2-medium"), [])


class TestValidation:
    def test_constructor(self):
        with pytest.raises(ValueError):
            ServingEngine(safety_factor=0.9)
        with pytest.raises(ValueError):
            ServingEngine(TokenPickerConfig(schedule="depth"))
        with pytest.raises(ValueError):
            ServingEngine(max_batch_size=0)

    def test_mismatched_request_dims_rejected(self):
        rng = np.random.default_rng(7)
        engine = _engine()
        engine.submit(synthetic_request(rng, 2, 16, 16, max_new_tokens=1))
        engine.step()
        engine.submit(synthetic_request(rng, 4, 16, 16, max_new_tokens=1))
        with pytest.raises(ValueError):
            engine.run_until_drained()

    def test_pooled_sequence_rejected_by_step_external(self):
        rng = np.random.default_rng(8)
        engine = _engine()
        engine.submit(synthetic_request(rng, 2, 16, 16, max_new_tokens=2))
        report = engine.step()
        sid = next(iter(report.per_sequence))
        q = np.zeros((2, 16))
        kv = np.zeros((2, 4, 16))
        with pytest.raises(ValueError):
            engine.step_external({sid: (q, kv, kv)})

    def test_unknown_sequence(self):
        engine = _engine()
        with pytest.raises(KeyError):
            engine.stats_of(3)


class TestAdmissionEdgeCases:
    def test_zero_pool_headroom_waits_without_hanging(self):
        """With the pool fully committed, admission yields nothing, the
        engine keeps stepping, and the queued request admits on free."""
        rng = np.random.default_rng(20)
        engine = _engine(max_batch_size=8, capacity_tokens=64, block_size=16)
        engine.submit(synthetic_request(rng, 2, 48, 16, max_new_tokens=16))
        report = engine.step()
        assert report.admitted and engine.pool.blocks_free == 0
        engine.submit(synthetic_request(rng, 2, 16, 16, max_new_tokens=4))
        report = engine.step()
        assert not report.admitted and engine.n_pending == 1
        engine.run_until_drained()
        assert len(engine.completed) == 2

    def test_max_new_tokens_zero_rejected_clearly(self):
        rng = np.random.default_rng(21)
        keys = rng.normal(size=(2, 16, 16))
        with pytest.raises(ValueError, match="max_new_tokens"):
            GenerationRequest(
                prompt_keys=keys, prompt_values=keys, max_new_tokens=0
            )

    def test_request_larger_than_pool_rejects_not_hangs(self):
        """An impossible request errors at submit with a clear message and
        never enters the queue, so it cannot head-block admission."""
        rng = np.random.default_rng(22)
        engine = _engine(capacity_tokens=64, block_size=16)
        small = synthetic_request(rng, 2, 16, 16, max_new_tokens=2)
        with pytest.raises(ValueError, match="pool holds"):
            engine.submit(synthetic_request(rng, 2, 64, 16, max_new_tokens=8))
        engine.submit(small)
        assert engine.n_pending == 1
        engine.run_until_drained()
        assert len(engine.completed) == 1


class TestSchedulerBypass:
    def _queue_big_then_small(self, engine):
        """One active request, then a queued big request that cannot fit
        alongside it, then a small one that can."""
        rng = np.random.default_rng(23)
        first = engine.submit(synthetic_request(rng, 2, 48, 16, 16))
        engine.step()  # 4 of 8 blocks committed
        big = engine.submit(synthetic_request(rng, 2, 96, 16, 16))  # 7 blocks
        small = engine.submit(synthetic_request(rng, 2, 32, 16, 16))  # 3
        return first, big, small

    def test_strict_fifo_is_the_default(self):
        engine = _engine(max_batch_size=8, capacity_tokens=128, block_size=16)
        _, big, small = self._queue_big_then_small(engine)
        report = engine.step()
        assert not report.admitted  # the big head blocks the small request
        assert engine.n_pending == 2
        assert engine.scheduler.bypassed_total == 0
        engine.run_until_drained()
        # FIFO preserved: the big request finishes admission-before-small
        order = [c.request_id for c in engine.completed]
        assert order.index(big) < order.index(small)

    def test_small_request_bypasses_blocked_head(self):
        engine = _engine(
            max_batch_size=8,
            capacity_tokens=128,
            block_size=16,
            allow_bypass=True,
        )
        _, big, small = self._queue_big_then_small(engine)
        report = engine.step()
        assert report.admitted == [small]
        assert engine.scheduler.bypassed_total == 1
        assert [r.request_id for r in engine.scheduler.pending] == [big]
        engine.run_until_drained()
        assert len(engine.completed) == 3

    def test_bypass_keeps_left_behind_order(self):
        from repro.serving import Scheduler

        scheduler = Scheduler(max_batch_size=4)
        rng = np.random.default_rng(24)
        requests = [
            synthetic_request(rng, 2, p, 16, max_new_tokens=1)
            for p in (90, 20, 95, 25)
        ]
        for i, r in enumerate(requests):
            r.request_id = i
            scheduler.submit(r)
        admitted = scheduler.admit(
            lambda r: r.prompt_tokens < 50, 0, lambda r: None,
            allow_bypass=True,
        )
        assert [r.request_id for r in admitted] == [1, 3]
        assert [r.request_id for r in scheduler.pending] == [0, 2]


class TestScheduler:
    def test_pack_order_and_utilization(self):
        assert Scheduler.pack_order({1: 5, 2: 9, 3: 7}) == [2, 3, 1]
        assert Scheduler.ragged_utilization([10, 10]) == 1.0
        assert Scheduler.ragged_utilization([10, 5]) == pytest.approx(0.75)
        assert Scheduler.ragged_utilization([]) == 1.0

    def test_max_batch_validation(self):
        with pytest.raises(ValueError):
            Scheduler(max_batch_size=0)


class TestChunkedPrefill:
    def _kept_by_request(self, engine):
        out = {}
        for report in engine.run_until_drained():
            for sid, view in report.per_sequence.items():
                out.setdefault(view.request_id, []).append(
                    report.results[sid].kept
                )
        return out

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="prefill_budget_tokens"):
            _engine(prefill_budget_tokens=0)
        with pytest.raises(ValueError, match="prefill_budget_tokens"):
            Scheduler(prefill_budget_tokens=-3)
        assert _engine(prefill_budget_tokens=None).prefill_budget_tokens is None
        assert _engine(prefill_budget_tokens=7).prefill_budget_tokens == 7

    def test_long_prompt_ingests_in_budgeted_chunks(self):
        rng = np.random.default_rng(30)
        engine = _engine(max_batch_size=4, prefill_budget_tokens=16)
        rid = engine.submit(synthetic_request(rng, 2, 50, 16, max_new_tokens=2))
        ingest_steps = []
        while engine.n_pending or engine.n_active:
            report = engine.step()
            if report.prefill_tokens:
                ingest_steps.append(report.prefill_tokens)
                assert report.prefill_tokens <= 16
                assert report.prefill_bits == (
                    report.prefill_tokens * 2 * 2 * 16 * CFG.quant.total_bits
                )
        # 50 prompt tokens at 16/step: 16+16+16+2, then decode begins
        assert ingest_steps == [16, 16, 16, 2]
        done = engine.completed[0]
        assert done.request_id == rid
        assert done.stats.prefill_chunks == 4
        assert engine.prefill_chunks_total == 4
        assert engine.prefill_tokens_total == 50

    def test_unbounded_budget_is_monolithic(self):
        rng = np.random.default_rng(31)
        engine = _engine()
        engine.submit(synthetic_request(rng, 2, 40, 16, max_new_tokens=3))
        report = engine.step()
        # whole prompt in one chunk, decode in the same step
        assert report.prefill_tokens == 40 and report.prefilling == 0
        assert report.batch_size == 1
        done = engine.run_until_drained()
        assert engine.completed[0].stats.prefill_chunks == 1

    def test_decode_priority_leftover_feeds_prefill(self):
        """Active decodes claim one budget token each; only the leftover
        ingests prompt chunks."""
        rng = np.random.default_rng(32)
        engine = _engine(max_batch_size=4, prefill_budget_tokens=10)
        engine.submit(synthetic_request(rng, 2, 8, 16, max_new_tokens=12))
        engine.submit(synthetic_request(rng, 2, 8, 16, max_new_tokens=12))
        engine.step()  # both shorts prefill (8 each, over two steps)
        engine.step()
        assert engine.n_prefilling == 0 and engine.n_active == 2
        engine.submit(synthetic_request(rng, 2, 40, 16, max_new_tokens=1))
        report = engine.step()
        # 10 budget - 2 decoding = 8 tokens of prefill this step
        assert report.prefill_tokens == 8
        assert report.batch_size == 2  # the long request is not decoding yet
        assert report.prefilling == 1
        engine.run_until_drained()
        assert len(engine.completed) == 3

    def test_prefilling_request_state_and_ttft_stamps(self):
        rng = np.random.default_rng(33)
        engine = _engine(max_batch_size=2, prefill_budget_tokens=8)
        request = synthetic_request(rng, 2, 20, 16, max_new_tokens=2)
        engine.submit(request)
        engine.step()
        assert request.state is RequestState.PREFILLING
        engine.run_until_drained()
        assert request.state is RequestState.FINISHED
        stats = engine.completed[0].stats
        # the split stamps order: queued -> prefill start -> first token
        assert 0 < stats.queued_wall <= stats.prefill_start_wall
        assert stats.prefill_start_wall <= stats.first_token_wall
        assert stats.ttft_seconds == pytest.approx(
            stats.queue_wait_seconds + stats.prefill_seconds
        )
        assert stats.queue_wait_seconds >= 0
        assert stats.prefill_seconds > 0

    def test_chunked_outputs_bit_identical_to_monolithic(self):
        """Property: for any budget, chunked prefill reproduces the
        monolithic engine's pruning decisions bit for bit (scales frozen
        once from the full prompt before the first chunk)."""
        for budget in (5, 16, 64, None):
            rng = np.random.default_rng(34)
            pairs = [
                _replayable_request(
                    rng, prompt=int(rng.integers(16, 80)), max_new=4
                )
                for _ in range(5)
            ]
            engine = _engine(prefill_budget_tokens=budget)
            id_map = {}
            for request, _ in pairs:
                clone = GenerationRequest(
                    prompt_keys=request.prompt_keys.copy(),
                    prompt_values=request.prompt_values.copy(),
                    max_new_tokens=request.max_new_tokens,
                    step_source=request.step_source,
                )
                id_map[engine.submit(clone)] = request
            kept = self._kept_by_request(engine)
            for rid, request in id_map.items():
                session_engine = _engine()
                ref_id = session_engine.submit(request)
                ref_kept = self._kept_by_request(session_engine)[ref_id]
                assert len(kept[rid]) == len(ref_kept)
                for a, b in zip(kept[rid], ref_kept):
                    assert np.array_equal(a, b)

    def test_outstanding_tokens_counts_pending_prompt(self):
        rng = np.random.default_rng(35)
        engine = _engine(max_batch_size=2, prefill_budget_tokens=8)
        engine.submit(synthetic_request(rng, 2, 32, 16, max_new_tokens=4))
        before = engine.outstanding_tokens
        assert before == 36
        engine.step()  # 8 tokens ingested, 24 still pending + 4 decodes
        assert engine.outstanding_tokens == 36
        engine.run_until_drained()
        assert engine.outstanding_tokens == 0


class TestSchedulerBypassShortCircuit:
    def test_scan_stops_once_slots_exhausted(self):
        """Regression: once the batch fills mid-scan the bypass loop
        stops — the queue tail is left in place (no wholesale
        pop/re-append churn) and ``can_fit`` is never probed past the
        last admissible slot; pinned via can_fit call order,
        bypassed_total and queue order."""
        scheduler = Scheduler(max_batch_size=2)
        rng = np.random.default_rng(40)
        requests = [
            synthetic_request(rng, 2, p, 16, max_new_tokens=1)
            for p in (90, 20, 25, 95, 30)
        ]
        for i, r in enumerate(requests):
            r.request_id = i
            scheduler.submit(r)
        probed = []

        def can_fit(request):
            probed.append(request.request_id)
            return request.prompt_tokens < 50

        admitted = scheduler.admit(
            can_fit, 0, lambda r: None, allow_bypass=True
        )
        # head (90) blocks; 20 and 25 bypass, filling both slots; the
        # scan stops there: 95 and 30 are never probed
        assert [r.request_id for r in admitted] == [1, 2]
        assert scheduler.bypassed_total == 2
        assert probed == [0, 1, 2]
        assert [r.request_id for r in scheduler.pending] == [0, 3, 4]

    def test_bypass_unfit_candidates_keep_order_before_untouched_tail(self):
        scheduler = Scheduler(max_batch_size=3)
        rng = np.random.default_rng(41)
        requests = [
            synthetic_request(rng, 2, p, 16, max_new_tokens=1)
            for p in (90, 80, 20, 70, 25, 60)
        ]
        for i, r in enumerate(requests):
            r.request_id = i
            scheduler.submit(r)
        admitted = scheduler.admit(
            lambda r: r.prompt_tokens < 50, 1, lambda r: None,
            allow_bypass=True,
        )
        # slots: 3 - 1 active = 2; 20 and 25 admit, scan stops at 60
        assert [r.request_id for r in admitted] == [2, 4]
        assert [r.request_id for r in scheduler.pending] == [0, 1, 3, 5]

    def test_prefill_order_is_admission_order_not_dict_order(self):
        """Regression: a preempt/resume cycle re-inserts a sequence at
        the end of the active dict; leftover budget must still feed the
        earliest-admitted prompt first."""
        rng = np.random.default_rng(37)
        engine = _engine(max_batch_size=4, prefill_budget_tokens=8)
        a = engine.submit(synthetic_request(rng, 2, 24, 16, max_new_tokens=1))
        engine.submit(synthetic_request(rng, 2, 24, 16, max_new_tokens=1))
        engine.step()  # both admitted; the 8-token chunk goes to A
        sid_a, sid_b = sorted(engine._active)
        assert engine._active[sid_a].prefill_pos == 8
        assert engine._active[sid_b].prefill_pos == 0
        # simulate the resume reordering: A re-inserted behind B
        entry_a = engine._active.pop(sid_a)
        engine._active[sid_a] = entry_a
        engine.step()
        assert engine._active[sid_a].prefill_pos == 16  # A still first
        assert engine._active[sid_b].prefill_pos == 0
        engine.run_until_drained()
        assert [c.request_id for c in engine.completed][0] == a
