"""Tests for the streaming decode session (frozen calibrated scales)."""

import numpy as np
import pytest

from repro.core import TokenPickerConfig, token_picker_attention_batched
from repro.core.session import TokenPickerSession


def _prompt_and_steps(seed=0, h=2, t=64, d=16, n_steps=4):
    rng = np.random.default_rng(seed)
    keys = rng.normal(size=(h, t, d))
    values = rng.normal(size=(h, t, d))
    steps = []
    for s in range(n_steps):
        tt = t + s + 1
        k = rng.normal(size=(h, tt, d))
        v = rng.normal(size=(h, tt, d))
        q = k[:, -5] * 2 + 0.3 * rng.normal(size=(h, d))
        steps.append((q, k, v))
    return keys, values, steps


class TestCalibration:
    def test_requires_prompt_first(self):
        session = TokenPickerSession()
        with pytest.raises(RuntimeError):
            session.step(np.zeros((2, 8)), np.zeros((2, 4, 8)), np.zeros((2, 4, 8)))

    def test_scales_positive(self):
        keys, values, _ = _prompt_and_steps()
        session = TokenPickerSession()
        scales = session.observe_prompt(keys, values)
        assert np.all(scales.q_scale > 0)
        assert np.all(scales.k_scale > 0)
        assert np.all(scales.v_scale > 0)

    def test_safety_factor_widens(self):
        keys, values, _ = _prompt_and_steps()
        tight = TokenPickerSession(safety_factor=1.0).observe_prompt(keys, values)
        wide = TokenPickerSession(safety_factor=1.5).observe_prompt(keys, values)
        assert np.all(wide.k_scale > tight.k_scale)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenPickerSession(safety_factor=0.9)
        with pytest.raises(ValueError):
            TokenPickerSession(config=TokenPickerConfig(schedule="depth"))
        session = TokenPickerSession()
        with pytest.raises(ValueError):
            session.observe_prompt(np.zeros((2, 4, 8)), np.zeros((2, 4, 9)))


class TestSteps:
    def test_stats_accumulate(self):
        keys, values, steps = _prompt_and_steps()
        session = TokenPickerSession(TokenPickerConfig(threshold=1e-2))
        session.observe_prompt(keys, values)
        for q, k, v in steps:
            r = session.step(q, k, v)
            assert r.outputs.shape == q.shape
        assert session.steps == len(steps)
        assert session.counter.tokens_seen > 0
        assert session.counter.k_bits <= session.counter.baseline_k_bits

    def test_matches_oracle_scales_when_calibration_covers(self):
        """With a generous safety factor the frozen-scale decisions are
        close to oracle per-call scales."""
        keys, values, steps = _prompt_and_steps(seed=1)
        cfg = TokenPickerConfig(threshold=1e-2)
        session = TokenPickerSession(cfg, safety_factor=1.6)
        session.observe_prompt(keys, values)
        q, k, v = steps[0]
        frozen = session.step(q, k, v)
        oracle = token_picker_attention_batched(q, k, v, cfg)
        agree = (frozen.kept == oracle.kept).mean()
        assert agree > 0.9

    def test_clip_events_counted(self):
        keys, values, steps = _prompt_and_steps(seed=2)
        session = TokenPickerSession(TokenPickerConfig(threshold=1e-2),
                                     safety_factor=1.0)
        session.observe_prompt(keys * 0.01, values * 0.01)  # too-narrow window
        q, k, v = steps[0]
        session.step(q, k, v)
        assert session.clip_events > 0
        assert session.clip_rate > 0

    def test_values_clips_counted(self):
        """Saturating V elements must show up in clip_rate: V travels the
        same quantized fetch path as Q/K (full V saturation coverage)."""
        keys, values, steps = _prompt_and_steps(seed=5)
        session = TokenPickerSession(TokenPickerConfig(threshold=1e-2),
                                     safety_factor=1.0)
        session.observe_prompt(keys, values)
        q, k, v = steps[0]
        # keep Q/K inside the calibrated window; blow up only V
        limit_q = session.scales.q_scale.max() * session.config.quant.qmax
        limit_k = session.scales.k_scale.max() * session.config.quant.qmax
        q = np.clip(q, -limit_q, limit_q)
        k = np.clip(k, -limit_k, limit_k)
        session.step(q, k, v * 100.0)
        assert session.clip_events > 0
        assert session.clip_rate > 0

    def test_no_clips_with_headroom(self):
        keys, values, steps = _prompt_and_steps(seed=3)
        session = TokenPickerSession(TokenPickerConfig(threshold=1e-2),
                                     safety_factor=3.0)
        session.observe_prompt(keys, values)
        q, k, v = steps[0]
        session.step(q, k, v)
        # generous headroom: clipping should be rare or absent
        assert session.clip_rate < 0.05

    def test_recalibration_preserves_accumulated_stats(self):
        """A second observe_prompt refreshes the scales but must not reset
        the session's traffic and clip accounting."""
        keys, values, steps = _prompt_and_steps(seed=6)
        session = TokenPickerSession(TokenPickerConfig(threshold=1e-2),
                                     safety_factor=1.0)
        session.observe_prompt(keys * 0.01, values * 0.01)
        q, k, v = steps[0]
        session.step(q, k, v)
        bits_before = session.counter.k_bits
        clips_before = session.clip_events
        assert bits_before > 0 and clips_before > 0
        old_scales = session.scales
        session.observe_prompt(keys, values)  # recalibrate wider
        assert session.counter.k_bits == bits_before
        assert session.clip_events == clips_before
        assert np.all(session.scales.k_scale > old_scales.k_scale)
        q, k, v = steps[1]
        session.step(q, k, v)
        assert session.counter.k_bits > bits_before

    def test_explicit_query_calibration(self):
        keys, values, steps = _prompt_and_steps(seed=4)
        rng = np.random.default_rng(9)
        queries = rng.normal(size=keys.shape) * 4
        session = TokenPickerSession(TokenPickerConfig(threshold=1e-2))
        scales_with_q = session.observe_prompt(keys, values, queries=queries)
        session2 = TokenPickerSession(TokenPickerConfig(threshold=1e-2))
        scales_without = session2.observe_prompt(keys, values)
        assert np.all(scales_with_q.q_scale >= scales_without.q_scale)
