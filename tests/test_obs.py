"""Unit tests for the observability layer (:mod:`repro.obs`).

Covers the span recorder's bookkeeping (exactly-once closure, imbalance
reporting, sampling), both exporters against their own schema
validators, the registry-backed ``--profile`` renderer, the Prometheus
text exposition, and the :class:`MetricsRegistry` serialization
round-trip.
"""

import json

import numpy as np
import pytest

from repro.cluster.metrics import MetricsRegistry
from repro.core import TokenPickerConfig
from repro.obs import (
    NULL_TRACER,
    TraceSchemaError,
    Tracer,
    validate_span_log,
    validate_trace,
    validate_trace_file,
)
from repro.obs.profile import export_engine_metrics, render_profile
from repro.serving import ServingEngine, synthetic_request

N_HEADS, HEAD_DIM = 2, 8


def _drained_engine(seed=7, n_requests=5, **kw):
    kw.setdefault("max_batch_size", 3)
    kw.setdefault("capacity_tokens", 512)
    engine = ServingEngine(TokenPickerConfig(threshold=2e-3), seed=seed, **kw)
    rng = np.random.default_rng(seed)
    for _ in range(n_requests):
        engine.submit(synthetic_request(rng, N_HEADS, 12, HEAD_DIM, 6))
    engine.run_until_drained()
    return engine


# --------------------------------------------------------------- tracer core


class TestTracer:
    def test_null_tracer_is_falsy_noop(self):
        assert not NULL_TRACER
        assert not NULL_TRACER.want_step(0)
        NULL_TRACER.begin("p", "t", "span")
        NULL_TRACER.end("p", "t", "span")
        NULL_TRACER.instant("p", "t", "mark")
        NULL_TRACER.close_track("p", "t")
        NULL_TRACER.step_span("p", ts=0.0, dur=1.0, args={})

    def test_tracer_is_truthy(self):
        assert Tracer()

    def test_sample_steps_validation(self):
        with pytest.raises(ValueError):
            Tracer(sample_steps=0)

    def test_want_step_sampling(self):
        tracer = Tracer(sample_steps=3)
        wanted = [i for i in range(10) if tracer.want_step(i)]
        assert wanted == [0, 3, 6, 9]

    def test_begin_end_emits_span(self):
        tracer = Tracer()
        tracer.begin("p", "t", "work", ts=1.0, args={"a": 1})
        assert tracer.open_span_count == 1
        assert tracer.open_spans() == [("p", "t", "work")]
        tracer.end("p", "t", "work", ts=1.5, args={"b": 2})
        assert tracer.open_span_count == 0
        assert tracer.errors == []
        (ev,) = tracer.events
        assert (ev.name, ev.ph, ev.ts_s) == ("work", "X", 1.0)
        assert ev.dur_s == pytest.approx(0.5)
        assert ev.args == {"a": 1, "b": 2}

    def test_end_without_begin_is_reported(self):
        tracer = Tracer()
        tracer.end("p", "t", "ghost")
        assert tracer.events == []
        assert len(tracer.errors) == 1
        assert "end without begin" in tracer.errors[0]

    def test_end_closes_deeper_spans_and_reports(self):
        tracer = Tracer()
        tracer.begin("p", "t", "outer", ts=0.0)
        tracer.begin("p", "t", "inner", ts=1.0)
        tracer.end("p", "t", "outer", ts=2.0)
        assert tracer.open_span_count == 0
        # both spans were emitted, but the imbalance is never silent
        assert {e.name for e in tracer.events} == {"outer", "inner"}
        assert any("implicitly closed" in err for err in tracer.errors)

    def test_close_track_exactly_once(self):
        tracer = Tracer()
        tracer.begin("p", "req1", "request", ts=0.0)
        tracer.begin("p", "req1", "decode", ts=1.0)
        tracer.close_track("p", "req1", ts=3.0, args={"state": "finished"})
        # args land on the outermost span (the request carries its state)
        by_name = {e.name: e for e in tracer.events}
        assert by_name["request"].args == {"state": "finished"}
        assert by_name["decode"].args is None
        # second close is a no-op: terminal transitions cannot double-close
        before = len(tracer.events)
        tracer.close_track("p", "req1", ts=4.0)
        assert len(tracer.events) == before
        assert tracer.errors == []

    def test_step_span_phase_layout(self):
        tracer = Tracer()
        tracer.step_span(
            "engine",
            ts=10.0,
            dur=1.0,
            args={"step": 0, "tokens": 4},
            phase_seconds={
                "pack": 0.1,
                "score": 0.5,
                "score_chunk0": 0.3,
                "score_refine": 0.4,  # clamped into "score"
                "prune": 0.1,
                "unpack": 0.2,
            },
        )
        spans = {e.name: e for e in tracer.events}
        assert spans["engine_step"].thread == "steps"
        phases = [e for e in tracer.events if e.thread == "phases"]
        # pack -> score -> prune -> unpack laid out sequentially
        order = [e.name for e in sorted(phases, key=lambda e: (e.ts_s, -e.dur_s))]
        assert order == ["pack", "score", "score_chunk0", "score_refine",
                         "prune", "unpack"]
        score = spans["score"]
        for sub in ("score_chunk0", "score_refine"):
            assert spans[sub].ts_s >= score.ts_s - 1e-12
            assert (
                spans[sub].ts_s + spans[sub].dur_s
                <= score.ts_s + score.dur_s + 1e-12
            )


# ----------------------------------------------------------------- exporters


class TestExporters:
    def _tracer(self):
        tracer = Tracer()
        tracer.begin("r0", "req1", "request", ts=0.0)
        tracer.instant("r0", "req1", "first_token", ts=0.25)
        tracer.close_track("r0", "req1", ts=1.0, args={"state": "finished"})
        tracer.step_span("r0", ts=0.0, dur=0.5, args={"tokens": 1})
        return tracer

    def test_perfetto_export_validates(self):
        record = self._tracer().to_trace_events()
        validate_trace(record)
        assert record["displayTimeUnit"] == "ms"
        meta = [e for e in record["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert {"r0", "req1", "steps"} <= names

    def test_perfetto_microsecond_timestamps(self):
        record = self._tracer().to_trace_events()
        request = next(
            e for e in record["traceEvents"] if e.get("name") == "request"
        )
        assert request["ts"] == pytest.approx(0.0)
        assert request["dur"] == pytest.approx(1e6)

    def test_span_log_roundtrip_is_exact(self, tmp_path):
        tracer = self._tracer()
        path = tracer.write_span_log(tmp_path / "spans.jsonl")
        assert validate_span_log(path.read_text().splitlines()) == len(
            tracer.events
        )
        from repro.obs.analyze import load_events

        events = load_events(path)
        by_name = {e["name"]: e for e in events}
        assert by_name["request"]["ts_s"] == 0.0  # bit-exact
        assert by_name["request"]["dur_s"] == 1.0

    def test_write_trace_file_validates(self, tmp_path):
        path = self._tracer().write_trace(tmp_path / "trace.json")
        validate_trace_file(path)


# -------------------------------------------------------------------- schema


class TestSchema:
    def test_empty_trace_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_trace({"traceEvents": []})

    def test_span_without_process_metadata_rejected(self):
        with pytest.raises(TraceSchemaError, match="process_name"):
            validate_trace(
                {
                    "traceEvents": [
                        {"name": "s", "cat": "c", "ph": "X", "pid": 0,
                         "tid": 1, "ts": 0.0, "dur": 1.0}
                    ]
                }
            )

    def test_overlapping_spans_rejected(self):
        tracer = Tracer()
        tracer.complete("p", "t", "a", ts=0.0, dur=2.0)
        tracer.complete("p", "t", "b", ts=1.0, dur=2.0)  # extends past "a"
        with pytest.raises(TraceSchemaError, match="must nest"):
            validate_trace(tracer.to_trace_events())

    def test_nested_spans_accepted(self):
        tracer = Tracer()
        tracer.complete("p", "t", "a", ts=0.0, dur=2.0)
        tracer.complete("p", "t", "b", ts=0.5, dur=1.0)
        validate_trace(tracer.to_trace_events())

    def test_empty_span_log_rejected(self):
        with pytest.raises(TraceSchemaError):
            validate_span_log([])

    def test_span_log_bad_phase_rejected(self):
        line = json.dumps(
            {"name": "s", "cat": "c", "ph": "M", "process": "p",
             "thread": "t", "ts_s": 0.0}
        )
        with pytest.raises(TraceSchemaError):
            validate_span_log([line])

    def test_schema_cli(self, tmp_path, capsys):
        from repro.obs.schema import main

        tracer = Tracer()
        tracer.complete("p", "t", "a", ts=0.0, dur=1.0)
        good = tracer.write_trace(tmp_path / "good.json")
        assert main([str(good)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": []}))
        assert main([str(bad)]) == 1
        assert main([]) == 2


# -------------------------------------------------- registry-backed profiles


class TestProfile:
    def test_export_engine_metrics_populates_registry(self):
        engine = _drained_engine()
        registry = export_engine_metrics(engine)
        done = {
            labels.get("replica") is None and metric.value
            for name, labels, metric in registry.series("requests_completed")
        }
        assert done == {float(len(engine.completed))}
        gen = sum(c.stats.generated_tokens for c in engine.completed)
        ((_, _, tokens),) = list(registry.series("generated_tokens"))
        assert tokens.value == gen

    def test_render_profile_reflects_engine_counters(self):
        engine = _drained_engine(prefill_budget_tokens=8)
        lines = render_profile(engine)
        text = "\n".join(lines)
        totals = engine.round_alive_totals
        kept = totals[-1] / totals[0]
        assert "kernel rounds (numpy score backend)" in text
        assert f"kept: {kept:.4f}" in text
        assert (
            f"chunked prefill (budget 8): {engine.prefill_tokens_total} "
            f"prompt tokens in {engine.prefill_chunks_total} chunks" in text
        )

    def test_render_profile_tiered_engine(self):
        from repro.kvstore import RadixKVCache, TierConfig

        engine = _drained_engine(
            kv_tiering=TierConfig(policy="mass"),
            prefix_cache=RadixKVCache(capacity_tokens=4096),
        )
        text = "\n".join(render_profile(engine))
        assert "kv tiering (mass policy" in text
        assert "prefix cache: hit rate" in text

    def test_render_profile_untouched_engine_is_empty(self):
        engine = ServingEngine(
            TokenPickerConfig(), max_batch_size=2, capacity_tokens=256
        )
        assert render_profile(engine) == []


# ------------------------------------------------------- metrics serialization


class TestRegistrySerialization:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("requests", replica="0").inc(3)
        registry.gauge("depth").set(7.5)
        hist = registry.histogram("latency", replica="0", route="fast")
        for v in (0.01, 0.02, 0.4):
            hist.observe(v)
        return registry

    def test_round_trip(self):
        registry = self._registry()
        clone = MetricsRegistry.from_dict(registry.to_dict())
        assert clone.to_dict() == registry.to_dict()
        hist = clone.histogram("latency", replica="0", route="fast")
        assert hist.count == 3
        assert hist.total == pytest.approx(0.43)
        assert clone.counter("requests", replica="0").value == 3

    def test_empty_registry_round_trip(self):
        registry = MetricsRegistry()
        clone = MetricsRegistry.from_dict(registry.to_dict())
        assert clone.to_dict() == {"series": []}

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_labels_distinguish_series(self):
        registry = MetricsRegistry()
        registry.counter("x", replica="0").inc()
        registry.counter("x", replica="1").inc(2)
        assert registry.counter("x", replica="0").value == 1
        assert registry.counter("x", replica="1").value == 2


class TestPrometheusRendering:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        registry.counter("requests", replica="0").inc(5)
        registry.gauge("depth").set(2)
        registry.histogram("latency", replica="0").observe(0.5)
        text = registry.render_prometheus(prefix="tokenpicker")
        assert "# TYPE tokenpicker_requests counter" in text
        assert 'tokenpicker_requests{replica="0"} 5' in text
        assert "tokenpicker_depth 2" in text
        assert "# TYPE tokenpicker_latency summary" in text
        assert 'quantile="0.95"' in text
        assert 'tokenpicker_latency_count{replica="0"} 1' in text

    def test_empty_histogram_has_no_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("latency")
        text = registry.render_prometheus()
        assert "quantile" not in text
        assert "latency_count 0" in text

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("x", path='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert '\\"' in text and "\\\\" in text and "\\n" in text
