"""Tests for the HBM2 channel model."""

import numpy as np
import pytest

from repro.hw.dram import DRAMRequest, HBM2Model, streaming_cycles


class TestSubmit:
    def test_single_request_latency(self):
        m = HBM2Model(latency_cycles=24, bytes_per_cycle=64)
        r = DRAMRequest(channel=0, n_bytes=64, issue_cycle=0)
        ready = m.submit(r)
        assert ready == 25  # 1 cycle transfer + 24 latency
        assert r.ready_cycle == 25

    def test_half_cycle_chunks_share_a_cycle(self):
        """Two 32 B chunks fit in one 64 B/cycle channel cycle."""
        m = HBM2Model(latency_cycles=10, bytes_per_cycle=64)
        r1 = m.submit(DRAMRequest(channel=0, n_bytes=32, issue_cycle=0))
        r2 = m.submit(DRAMRequest(channel=0, n_bytes=32, issue_cycle=0))
        assert r1 == 11  # ceil(0.5 + 10)
        assert r2 == 11  # ceil(1.0 + 10)

    def test_queueing_behind_busy_channel(self):
        m = HBM2Model(latency_cycles=5, bytes_per_cycle=64)
        m.submit(DRAMRequest(channel=0, n_bytes=640, issue_cycle=0))  # busy 10
        r = m.submit(DRAMRequest(channel=0, n_bytes=64, issue_cycle=0))
        assert r == 16  # starts at 10, +1 transfer, +5 latency

    def test_channels_independent(self):
        m = HBM2Model(latency_cycles=5, bytes_per_cycle=64)
        m.submit(DRAMRequest(channel=0, n_bytes=6400, issue_cycle=0))
        r = m.submit(DRAMRequest(channel=1, n_bytes=64, issue_cycle=0))
        assert r == 6

    def test_random_access_penalty(self):
        m = HBM2Model(latency_cycles=5, bytes_per_cycle=64, random_access_penalty=2.0)
        r_stream = m.submit(DRAMRequest(channel=0, n_bytes=64, issue_cycle=0))
        m.reset()
        r_rand = m.submit(
            DRAMRequest(channel=0, n_bytes=64, issue_cycle=0, streaming=False)
        )
        assert r_rand == r_stream + 2

    def test_counters(self):
        m = HBM2Model()
        m.submit(DRAMRequest(channel=0, n_bytes=128, issue_cycle=0))
        m.submit(DRAMRequest(channel=3, n_bytes=64, issue_cycle=0))
        assert m.total_bytes == 192
        assert m.requests_served == 2
        assert m.bytes_transferred[0] == 128

    def test_reset(self):
        m = HBM2Model()
        m.submit(DRAMRequest(channel=0, n_bytes=64, issue_cycle=0))
        m.reset()
        assert m.total_bytes == 0
        assert m.requests_served == 0
        assert m.drain_cycle() == 0

    def test_invalid_channel(self):
        m = HBM2Model(n_channels=2)
        with pytest.raises(ValueError):
            m.submit(DRAMRequest(channel=2, n_bytes=64, issue_cycle=0))

    def test_invalid_bytes(self):
        m = HBM2Model()
        with pytest.raises(ValueError):
            m.submit(DRAMRequest(channel=0, n_bytes=0, issue_cycle=0))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HBM2Model(n_channels=0)
        with pytest.raises(ValueError):
            HBM2Model(random_access_penalty=-1)


class TestUtilisation:
    def test_full_utilisation(self):
        m = HBM2Model(n_channels=2, bytes_per_cycle=64, latency_cycles=0)
        m.submit(DRAMRequest(channel=0, n_bytes=640, issue_cycle=0))
        m.submit(DRAMRequest(channel=1, n_bytes=640, issue_cycle=0))
        assert np.isclose(m.utilisation(10), 1.0)

    def test_zero_elapsed(self):
        assert HBM2Model().utilisation(0) == 0.0

    def test_drain_cycle(self):
        m = HBM2Model(latency_cycles=5, bytes_per_cycle=64)
        m.submit(DRAMRequest(channel=0, n_bytes=128, issue_cycle=0))
        assert m.drain_cycle() == 7


class TestStreamingCycles:
    def test_zero_bytes(self):
        assert streaming_cycles(0) == 0

    def test_bandwidth_bound(self):
        # 512 KiB over 8 channels x 64 B/cycle = 1024 cycles + latency
        assert streaming_cycles(512 * 1024, 8, 64, 24) == 24 + 1024

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            streaming_cycles(-1)

    def test_single_byte(self):
        assert streaming_cycles(1, 8, 64, 24) == 25
