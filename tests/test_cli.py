"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_fast_analytic_experiments(self, capsys):
        code = main(["fig2", "table1", "table2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig. 2" in out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "regenerated in" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        assert "dominant" in capsys.readouterr().out

    def test_serve_sim(self, capsys):
        code = main([
            "serve-sim", "--batch-size", "4", "--n-requests", "6",
            "--context-length", "48", "--max-new-tokens", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Continuous-batching serving simulation" in out
        assert "peak concurrency: 4" in out
        assert "KV-bit reduction" in out
        assert "tokens/s" in out

    def test_serve_sim_profile(self, capsys):
        code = main([
            "serve-sim", "--batch-size", "4", "--n-requests", "6",
            "--context-length", "48", "--max-new-tokens", "4", "--profile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "phase breakdown" in out
        for phase in ("pack", "score", "prune", "unpack"):
            assert phase in out
        assert "ms/step" in out

    def test_all_excludes_serve_sim(self, capsys):
        """`all` regenerates the paper artifacts only."""
        from repro import cli

        assert "serve-sim" not in cli.EXPERIMENTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_no_args_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig2", "fig3", "fig4", "fig8", "fig9", "fig10", "table1", "table2",
        }
