"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_fast_analytic_experiments(self, capsys):
        code = main(["fig2", "table1", "table2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Fig. 2" in out
        assert "Table 1" in out
        assert "Table 2" in out
        assert "regenerated in" in out

    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        assert "dominant" in capsys.readouterr().out

    def test_serve_sim(self, capsys):
        code = main([
            "serve-sim", "--batch-size", "4", "--n-requests", "6",
            "--context-length", "48", "--max-new-tokens", "4",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Continuous-batching serving simulation" in out
        assert "peak concurrency: 4" in out
        assert "KV-bit reduction" in out
        assert "tokens/s" in out

    def test_serve_sim_profile(self, capsys):
        code = main([
            "serve-sim", "--batch-size", "4", "--n-requests", "6",
            "--context-length", "48", "--max-new-tokens", "4", "--profile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "phase breakdown" in out
        for phase in ("pack", "score", "prune", "unpack"):
            assert phase in out
        assert "ms/step" in out

    def test_serve_sim_kv_tiering_profile(self, capsys):
        code = main([
            "serve-sim", "--batch-size", "4", "--n-requests", "6",
            "--context-length", "48", "--max-new-tokens", "4",
            "--kv-tiering", "--prefix-cache", "--profile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "kv tiering (mass policy" in out
        assert "demotions" in out
        assert "B/token" in out
        assert "prefix cache: hit rate" in out
        assert "tiered step" in out

    def test_serve_cluster_tiered_admission(self, capsys):
        code = main([
            "serve-cluster", "--replicas", "2", "--batch-size", "4",
            "--n-requests", "8", "--context-length", "48",
            "--max-new-tokens", "4", "--burst-size", "4",
            "--admission", "tiered", "--kv-tiering", "--prefix-cache",
            "--profile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "tiered admission" in out
        assert "kv tiering" in out
        assert "prefix cache" in out

    def test_all_excludes_serve_sim(self, capsys):
        """`all` regenerates the paper artifacts only."""
        from repro import cli

        assert "serve-sim" not in cli.EXPERIMENTS

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig99"])

    def test_no_args_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_experiment_registry_complete(self):
        assert set(EXPERIMENTS) == {
            "fig2", "fig3", "fig4", "fig8", "fig9", "fig10", "table1", "table2",
        }


SERVE_SIM_ARGS = [
    "serve-sim", "--batch-size", "4", "--n-requests", "8",
    "--context-length", "48", "--max-new-tokens", "4", "--seed", "3",
]
SERVE_CLUSTER_ARGS = [
    "serve-cluster", "--replicas", "2", "--batch-size", "4",
    "--n-requests", "8", "--context-length", "48", "--max-new-tokens", "4",
    "--burst-size", "4", "--burst-gap", "2", "--seed", "3",
]


def _output_without_timing(capsys, argv):
    assert main(argv) == 0
    out = capsys.readouterr().out
    return "\n".join(
        line for line in out.splitlines() if "regenerated in" not in line
    )


class TestServeCluster:
    def test_serve_cluster_runs(self, capsys):
        code = main(SERVE_CLUSTER_ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "Cluster serving simulation" in out
        assert "2 replicas" in out
        assert "optimistic admission" in out
        assert "aggregate decode throughput" in out
        assert "replica 0:" in out and "replica 1:" in out

    def test_serve_cluster_profile_percentiles(self, capsys):
        """Acceptance: --profile surfaces per-replica TTFT and per-token
        latency p50/p95/p99 from the metrics registry."""
        code = main(SERVE_CLUSTER_ARGS + ["--profile"])
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry" in out
        for rid in (0, 1):
            assert f"replica {rid} TTFT" in out
            assert f"replica {rid} token latency" in out
        assert "p50" in out and "p95" in out and "p99" in out

    def test_serve_cluster_conservative_and_policies(self, capsys):
        code = main(
            SERVE_CLUSTER_ARGS
            + ["--admission", "conservative", "--policy", "round-robin"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "conservative admission" in out
        assert "preemptions: 0" in out

    def test_serve_sim_deterministic_across_runs(self, capsys):
        """Satellite: the --seed threads every RNG the engine draws from —
        two identical invocations print identical summaries (wall-clock
        appears only under --profile)."""
        first = _output_without_timing(capsys, SERVE_SIM_ARGS)
        second = _output_without_timing(capsys, SERVE_SIM_ARGS)
        assert first == second

    def test_serve_cluster_deterministic_across_runs(self, capsys):
        first = _output_without_timing(capsys, SERVE_CLUSTER_ARGS)
        second = _output_without_timing(capsys, SERVE_CLUSTER_ARGS)
        assert first == second

    def test_seed_changes_the_workload(self, capsys):
        baseline = _output_without_timing(capsys, SERVE_CLUSTER_ARGS)
        other = _output_without_timing(
            capsys, SERVE_CLUSTER_ARGS[:-1] + ["4"]
        )
        assert baseline != other


SERVE_FRONTEND_ARGS = [
    "serve-frontend", "--batch-size", "2", "--n-requests", "6",
    "--context-length", "24", "--max-new-tokens", "6", "--seed", "3",
]


class TestServeFrontend:
    def test_serve_frontend_runs(self, capsys):
        code = main(SERVE_FRONTEND_ARGS)
        out = capsys.readouterr().out
        assert code == 0
        assert "Async streaming frontend" in out
        assert "completed: 6" in out
        assert "shed: 0" in out

    def test_serve_frontend_slo_profile(self, capsys):
        """Satellite: --slo-p95-ms activates the overload controller and
        --profile exports the degrade-level gauge and shed/cancel/timeout
        counters from the metrics registry."""
        code = main(
            SERVE_FRONTEND_ARGS + ["--slo-p95-ms", "1.0", "--profile"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "overload control: SLO p95 1 ms" in out
        assert "peak degrade level" in out
        for metric in (
            "keep_threshold_degrade_level",
            "overload_shedding",
            "requests_cancelled",
            "requests_shed",
            "requests_timed_out",
        ):
            assert metric in out, metric

    def test_serve_frontend_chaos_bit_identical(self, capsys):
        code = main(SERVE_FRONTEND_ARGS + [
            "--inject-faults", "--replicas", "3", "--max-new-tokens", "10",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Chaos run" in out
        assert "kills: 2" in out
        assert "completed: 6/6" in out
        assert "bit-identical to fault-free run: True" in out

    def test_serve_frontend_chaos_needs_replicas(self):
        with pytest.raises(ValueError):
            main(SERVE_FRONTEND_ARGS + [
                "--inject-faults", "--replicas", "1",
            ])

    def test_serve_frontend_deterministic_across_runs(self, capsys):
        first = _output_without_timing(capsys, SERVE_FRONTEND_ARGS)
        second = _output_without_timing(capsys, SERVE_FRONTEND_ARGS)
        assert first == second
