"""Tests for the experiment drivers (fast paths; full runs live in benchmarks/)."""

import numpy as np
import pytest

from repro.eval.experiments.fig2 import run_fig2
from repro.eval.experiments.fig3 import run_fig3
from repro.eval.experiments.fig8 import run_fig8
from repro.eval.experiments.fig9 import FIG9_CELLS, run_fig9
from repro.eval.experiments.fig10 import run_fig10
from repro.eval.experiments.tables import run_table1, run_table2

#: Fixed fast thresholds (calibration-context scale) so driver tests never
#: trigger LM training; calibrated paths are exercised by benchmarks.
FAST_THRESHOLDS = {"topick": 2.5e-2, "topick-0.3": 3.1e-2, "topick-0.5": 3.7e-2}


class TestFig2Driver:
    def test_rows_and_format(self):
        r = run_fig2()
        assert len(r.rows()) == 12
        text = r.format()
        assert "Fig. 2" in text and "gpt2-xl" in text


class TestFig3Driver:
    def test_contrast_and_format(self):
        r = run_fig3(seed=0, n_population=6)
        assert r.hist_b.dominant_tokens > r.hist_a.dominant_tokens
        assert "Fig. 3" in r.format()
        assert len(r.population_fractions) == 6


class TestFig8Driver:
    def test_shapes_and_ordering(self):
        r = run_fig8(
            thresholds=FAST_THRESHOLDS,
            n_instances=2,
            models=("gpt2-large", "opt-1.3b"),
            measure_ppl=False,
        )
        assert len(r.rows_by_model) == 2
        for row in r.rows_by_model:
            assert 0 < row.normalized_access["topick"] < 1
            assert (
                row.normalized_access["topick-0.3"]
                <= row.normalized_access["topick"] + 1e-9
            )
        assert "Fig. 8" in r.format()
        assert r.aggregates["topick"]["total_reduction"] > 1.0


class TestFig9Driver:
    def test_cells_and_designs(self):
        r = run_fig9(threshold=FAST_THRESHOLDS["topick-0.5"], n_instances=2)
        assert len(r.cells) == len(FIG9_CELLS)
        for cell in r.cells:
            assert set(cell.normalized) == {"spatten", "spatten_ft", "topick-0.5"}
            assert cell.normalized["spatten_ft"] < cell.normalized["spatten"]
        # SpAtten improves monotonically along the run-length axis
        sp = [c.normalized["spatten"] for c in r.cells]
        assert all(a >= b for a, b in zip(sp, sp[1:]))
        assert "Fig. 9" in r.format()


class TestFig10Driver:
    def test_speedups_and_energy(self):
        r = run_fig10(
            thresholds=FAST_THRESHOLDS,
            n_instances=2,
            models=("gpt2-large", "opt-1.3b"),
        )
        assert len(r.rows_by_model) == 2
        for row in r.rows_by_model:
            assert row.speedup["topick"] > 1.0
            assert row.normalized_energy["topick"] < 1.0
            bd = row.energy_breakdown["topick"]
            assert bd.total < 1.0  # normalized to baseline total
        assert r.ablation["estimation_only"] > 1.0
        assert "Fig. 10" in r.format()


class TestTableDrivers:
    def test_table1(self):
        r = run_table1()
        text = r.format()
        assert "HBM2" in text and "500 MHz" in text
        assert len(r.rows()) == 5

    def test_table2(self):
        r = run_table2()
        text = r.format()
        assert "Table 2" in text
        assert "paper +1.0% / +1.3%" in text
        assert r.report.total_area > 0
