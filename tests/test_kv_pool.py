"""Tests for the block-pooled (paged) KV cache."""

import numpy as np
import pytest

from repro.core.config import QuantConfig
from repro.serving.kv_pool import (
    KVCachePool,
    PoolExhausted,
    count_clips,
    freeze_scales,
)


def _pool(**kw):
    defaults = dict(n_heads=2, head_dim=4, capacity_tokens=64, block_size=8)
    defaults.update(kw)
    return KVCachePool(**defaults)


class TestStorage:
    def test_append_view_roundtrip(self):
        rng = np.random.default_rng(0)
        pool = _pool()
        pool.register(0)
        k1, v1 = rng.normal(size=(2, 11, 4)), rng.normal(size=(2, 11, 4))
        pool.append(0, k1, v1)
        k2, v2 = rng.normal(size=(2, 1, 4)), rng.normal(size=(2, 1, 4))
        pool.append(0, k2, v2)
        keys, values = pool.view(0)
        assert np.array_equal(keys, np.concatenate([k1, k2], axis=1))
        assert np.array_equal(values, np.concatenate([v1, v2], axis=1))
        assert pool.length(0) == 12

    def test_views_are_read_only(self):
        rng = np.random.default_rng(1)
        pool = _pool()
        pool.register(0)
        k = rng.normal(size=(2, 5, 4))
        pool.append(0, k, rng.normal(size=(2, 5, 4)))
        keys, values = pool.view(0)
        with pytest.raises(ValueError):
            keys[:] = 0.0
        with pytest.raises(ValueError):
            values[:] = 0.0
        assert np.array_equal(pool.view(0)[0], k)

    def test_incremental_staging_tracks_appends(self):
        rng = np.random.default_rng(9)
        pool = _pool(capacity_tokens=128)
        pool.register(0)
        ref_k = rng.normal(size=(2, 3, 4))
        ref_v = rng.normal(size=(2, 3, 4))
        pool.append(0, ref_k, ref_v)
        assert np.array_equal(pool.view(0)[0], ref_k)
        for _ in range(40):  # crosses block and capacity-regrowth boundaries
            k = rng.normal(size=(2, 1, 4))
            v = rng.normal(size=(2, 1, 4))
            pool.append(0, k, v)
            ref_k = np.concatenate([ref_k, k], axis=1)
            ref_v = np.concatenate([ref_v, v], axis=1)
            got_k, got_v = pool.view(0)
            assert np.array_equal(got_k, ref_k)
            assert np.array_equal(got_v, ref_v)

    def test_interleaved_sequences_stay_separate(self):
        rng = np.random.default_rng(2)
        pool = _pool(capacity_tokens=128)
        tensors = {}
        for sid in (0, 1, 2):
            pool.register(sid)
            k = rng.normal(size=(2, 3 + sid, 4))
            v = rng.normal(size=(2, 3 + sid, 4))
            pool.append(sid, k, v)
            tensors[sid] = (k, v)
        for step in range(5):
            for sid in (2, 0, 1):
                k = rng.normal(size=(2, 1, 4))
                v = rng.normal(size=(2, 1, 4))
                pool.append(sid, k, v)
                tensors[sid] = (
                    np.concatenate([tensors[sid][0], k], axis=1),
                    np.concatenate([tensors[sid][1], v], axis=1),
                )
        for sid, (k, v) in tensors.items():
            got_k, got_v = pool.view(sid)
            assert np.array_equal(got_k, k)
            assert np.array_equal(got_v, v)

    def test_blocks_reused_after_free(self):
        rng = np.random.default_rng(3)
        pool = _pool(capacity_tokens=16, block_size=8)  # 2 blocks total
        pool.register(0)
        pool.append(0, rng.normal(size=(2, 16, 4)), rng.normal(size=(2, 16, 4)))
        assert pool.blocks_free == 0
        assert pool.free(0) == 2
        pool.register(1)
        k = rng.normal(size=(2, 16, 4))
        pool.append(1, k, np.zeros_like(k))
        assert np.array_equal(pool.view(1)[0], k)


class TestArena:
    def test_views_are_zero_copy_arena_slices(self):
        """view() must alias the token-major arena, not copy it."""
        rng = np.random.default_rng(0)
        pool = _pool()
        pool.register(0)
        pool.append(0, rng.normal(size=(2, 6, 4)), rng.normal(size=(2, 6, 4)))
        k, v = pool.view(0)
        assert np.shares_memory(k, pool.k_arena)
        assert np.shares_memory(v, pool.v_arena)

    def test_segment_table_locates_contiguous_runs(self):
        rng = np.random.default_rng(1)
        pool = _pool(capacity_tokens=128)
        for sid, n in ((0, 10), (1, 7)):
            pool.register(sid, reserve_tokens=16)
            pool.append(sid, rng.normal(size=(2, n, 4)), rng.normal(size=(2, n, 4)))
        segs = pool.segments_of([0, 1])
        assert segs.shape == (2, 2)
        assert segs[0].tolist() == [0, 10]
        assert segs[1].tolist() == [16, 7]  # reservation sized the run
        off, length = pool.segment(1)
        k, _ = pool.view(1)
        assert np.array_equal(
            pool.k_arena[off:off + length].transpose(1, 0, 2), k
        )

    def test_append_rows_scatters_one_token_per_sequence(self):
        rng = np.random.default_rng(2)
        pool = _pool(capacity_tokens=128)
        refs = {}
        for sid in (0, 1, 2):
            pool.register(sid, reserve_tokens=8)
            k = rng.normal(size=(2, 3, 4))
            v = rng.normal(size=(2, 3, 4))
            pool.append(sid, k, v)
            refs[sid] = (k, v)
        for _ in range(4):
            k_rows = rng.normal(size=(3, 2, 4))
            v_rows = rng.normal(size=(3, 2, 4))
            pool.append_rows([0, 1, 2], k_rows, v_rows)
            for i, sid in enumerate((0, 1, 2)):
                refs[sid] = (
                    np.concatenate([refs[sid][0], k_rows[i][:, None, :]], axis=1),
                    np.concatenate([refs[sid][1], v_rows[i][:, None, :]], axis=1),
                )
        for sid, (k, v) in refs.items():
            got_k, got_v = pool.view(sid)
            assert np.array_equal(got_k, k)
            assert np.array_equal(got_v, v)

    def test_append_slots_write_through(self):
        rng = np.random.default_rng(3)
        pool = _pool()
        pool.register(0)
        k_slots, v_slots = pool.append_slots(0, 5)
        k = rng.normal(size=(5, 2, 4))
        v = rng.normal(size=(5, 2, 4))
        k_slots[:] = k
        v_slots[:] = v
        got_k, got_v = pool.view(0)
        assert np.array_equal(got_k, k.transpose(1, 0, 2))
        assert np.array_equal(got_v, v.transpose(1, 0, 2))
        assert pool.length(0) == 5

    def test_growth_relocates_preserving_data(self):
        """A sequence boxed in by a neighbour must relocate on growth and
        keep its contents bit-identical."""
        rng = np.random.default_rng(4)
        pool = _pool(capacity_tokens=64, block_size=8)  # 8 blocks
        pool.register(0)
        k0 = rng.normal(size=(2, 8, 4))
        pool.append(0, k0, np.zeros_like(k0))
        pool.register(1)
        k1 = rng.normal(size=(2, 8, 4))
        pool.append(1, k1, np.zeros_like(k1))  # sits right after seq 0
        grow = rng.normal(size=(2, 12, 4))  # forces seq 0 past its block
        pool.append(0, grow, np.zeros_like(grow))
        assert np.array_equal(
            pool.view(0)[0], np.concatenate([k0, grow], axis=1)
        )
        assert np.array_equal(pool.view(1)[0], k1)

    def test_fragmented_pool_needs_contiguous_hole(self):
        """can_fit is a *contiguous* check: free blocks split by live
        runs cannot host a new segment."""
        pool = _pool(capacity_tokens=32, block_size=8)  # 4 blocks
        for sid in range(4):
            pool.register(sid)
            pool.append(sid, np.zeros((2, 8, 4)), np.zeros((2, 8, 4)))
        pool.free(0)
        pool.free(2)
        assert pool.blocks_free == 2
        assert pool.largest_hole_blocks == 1
        assert not pool.can_fit(16)  # 2 blocks, but not adjacent
        assert pool.can_fit(8)
        pool.free(1)  # coalesces blocks 0-2 into one hole
        assert pool.largest_hole_blocks == 3
        assert pool.can_fit(24)

    def test_float32_k_channel(self):
        pool = _pool(k_dtype=np.float32)
        pool.register(0)
        digits = np.arange(2 * 6 * 4, dtype=np.float64).reshape(2, 6, 4) % 13
        pool.append(0, digits, np.zeros((2, 6, 4)))
        assert pool.k_arena.dtype == np.float32
        assert np.array_equal(pool.view(0)[0], digits)  # small ints exact


class TestAccounting:
    def test_eviction_accounting(self):
        rng = np.random.default_rng(4)
        pool = _pool(capacity_tokens=64, block_size=8)
        for sid in range(3):
            pool.register(sid)
            pool.append(
                sid, rng.normal(size=(2, 9, 4)), rng.normal(size=(2, 9, 4))
            )  # 2 blocks each
        assert pool.blocks_in_use == 6
        assert pool.peak_blocks_in_use == 6
        assert pool.utilization == pytest.approx(6 / 8)
        pool.free(1)
        assert pool.blocks_in_use == 4
        assert pool.peak_blocks_in_use == 6  # high-water mark sticks
        assert pool.blocks_allocated_total == 6
        assert pool.blocks_freed_total == 2
        assert pool.tokens_cached == 18
        assert pool.n_sequences == 2

    def test_exhaustion_raises_and_leaves_state(self):
        rng = np.random.default_rng(5)
        pool = _pool(capacity_tokens=16, block_size=8)
        pool.register(0)
        pool.append(0, rng.normal(size=(2, 12, 4)), rng.normal(size=(2, 12, 4)))
        before = pool.view(0)
        with pytest.raises(PoolExhausted):
            pool.append(
                0, rng.normal(size=(2, 8, 4)), rng.normal(size=(2, 8, 4))
            )
        assert pool.length(0) == 12
        assert np.array_equal(pool.view(0)[0], before[0])
        # both blocks are held by sequence 0: a new sequence cannot start
        assert not pool.can_fit(1)
        pool.free(0)
        assert pool.can_fit(16)


class TestSwap:
    def test_swap_out_in_roundtrip_bit_identical(self):
        rng = np.random.default_rng(4)
        pool = _pool()
        scales = freeze_scales(
            rng.normal(size=(2, 10, 4)),
            rng.normal(size=(2, 10, 4)),
            QuantConfig(),
            1.25,
        )
        pool.register(0, scales=scales)
        keys, values = rng.normal(size=(2, 10, 4)), rng.normal(size=(2, 10, 4))
        pool.append(0, keys, values)
        k_before, v_before = (a.copy() for a in pool.view(0))
        swapped = pool.swap_out(0)
        assert swapped.length == 10
        assert pool.n_sequences == 0 and pool.blocks_in_use == 0
        assert pool.swaps_out_total == 1
        # occupy different blocks so the run comes back at a new offset
        pool.register(9)
        pool.append(9, rng.normal(size=(2, 5, 4)), rng.normal(size=(2, 5, 4)))
        pool.swap_in(0, swapped)
        assert pool.swaps_in_total == 1
        assert pool.length(0) == 10
        assert pool.scales_of(0) is scales
        k_after, v_after = pool.view(0)
        assert np.array_equal(k_before, k_after)
        assert np.array_equal(v_before, v_after)

    def test_swap_in_respects_reservation(self):
        rng = np.random.default_rng(5)
        pool = _pool()
        pool.register(0)
        pool.append(0, rng.normal(size=(2, 4, 4)), rng.normal(size=(2, 4, 4)))
        swapped = pool.swap_out(0)
        pool.swap_in(0, swapped, reserve_tokens=32)
        entry_blocks = pool.blocks_in_use
        assert entry_blocks == pool.blocks_needed(32)

    def test_swap_in_raises_when_no_room(self):
        rng = np.random.default_rng(6)
        pool = _pool()
        pool.register(0)
        pool.append(0, rng.normal(size=(2, 16, 4)), rng.normal(size=(2, 16, 4)))
        swapped = pool.swap_out(0)
        pool.register(1)
        pool.append(
            1, rng.normal(size=(2, 56, 4)), rng.normal(size=(2, 56, 4))
        )
        with pytest.raises(PoolExhausted):
            pool.swap_in(0, swapped)
        assert pool.n_sequences == 1  # pool state unchanged

    def test_ensure_capacity_grows_without_writing(self):
        rng = np.random.default_rng(7)
        pool = _pool()
        pool.register(0)
        pool.append(0, rng.normal(size=(2, 8, 4)), rng.normal(size=(2, 8, 4)))
        assert pool.length(0) == 8
        before = pool.blocks_in_use
        pool.ensure_capacity(0, 9)
        assert pool.blocks_in_use == before + 1
        assert pool.length(0) == 8  # no tokens written
        with pytest.raises(PoolExhausted):
            pool.ensure_capacity(0, 1000)


class TestValidation:
    def test_constructor(self):
        with pytest.raises(ValueError):
            _pool(block_size=0)
        with pytest.raises(ValueError):
            _pool(capacity_tokens=4, block_size=8)
        with pytest.raises(ValueError):
            _pool(n_heads=0)

    def test_register_and_lookup_errors(self):
        pool = _pool()
        pool.register(0)
        with pytest.raises(ValueError):
            pool.register(0)
        with pytest.raises(KeyError):
            pool.view(99)
        with pytest.raises(KeyError):
            pool.free(99)

    def test_append_shape_errors(self):
        pool = _pool()
        pool.register(0)
        with pytest.raises(ValueError):
            pool.append(0, np.zeros((3, 4, 4)), np.zeros((3, 4, 4)))
        with pytest.raises(ValueError):
            pool.append(0, np.zeros((2, 4, 4)), np.zeros((2, 5, 4)))

    def test_zero_capacity_pool_is_safe(self):
        """Regression: a 0-block pool must not divide by zero anywhere a
        dashboard polls (utilization, hole sizes, fit checks)."""
        pool = _pool(capacity_tokens=0)
        assert pool.n_blocks == 0
        assert pool.utilization == 0.0
        assert pool.blocks_free == 0
        assert pool.blocks_in_use == 0
        assert pool.largest_hole_blocks == 0
        assert not pool.can_fit(1)
        pool.register(0)  # registering with no reservation is legal...
        assert pool.utilization == 0.0
        with pytest.raises(PoolExhausted):  # ...but any growth is not
            pool.append_slots(0, 1)
        # sub-block capacities other than zero stay rejected
        with pytest.raises(ValueError):
            _pool(capacity_tokens=4, block_size=8)


class TestCalibration:
    def test_freeze_scales_matches_manual(self):
        rng = np.random.default_rng(6)
        quant = QuantConfig()
        keys = rng.normal(size=(2, 32, 4))
        values = rng.normal(size=(2, 32, 4))
        scales = freeze_scales(keys, values, quant, safety_factor=1.25)
        expected_k = np.abs(keys).max(axis=(1, 2)) * 1.25 / quant.qmax
        assert np.allclose(scales.k_scale, expected_k)
        assert np.allclose(scales.q_scale, expected_k)  # K stands in for Q
        queries = rng.normal(size=(2, 32, 4)) * 3
        with_q = freeze_scales(keys, values, quant, 1.25, queries=queries)
        assert np.all(with_q.q_scale >= scales.q_scale)

    def test_count_clips(self):
        quant = QuantConfig()
        scale = np.array([1.0 / quant.qmax, 2.0 / quant.qmax])
        x = np.array([[0.5, 1.5], [1.5, 1.5]])  # limits: 1.0 and 2.0 per row
        assert count_clips(x, scale, quant) == 1
