"""End-to-end tests of the Token-Picker pruning algorithm (Sec. 3)."""

import math

import numpy as np
import pytest

from repro.core import (
    QuantConfig,
    TokenPickerConfig,
    exact_attention,
    exact_attention_probs,
    exact_threshold_pruning,
    multi_head_token_picker,
    pruning_error,
    token_picker_attention,
    token_picker_scores,
)


def _instance(seed, t=256, d=64, sharpness=2.0):
    """A synthetic attention instance with a few dominant tokens."""
    rng = np.random.default_rng(seed)
    keys = rng.normal(size=(t, d))
    values = rng.normal(size=(t, d))
    # Query aligned with a handful of keys -> peaky distribution.
    dominant = rng.choice(t, size=5, replace=False)
    q = keys[dominant].sum(axis=0) * sharpness / math.sqrt(5) + rng.normal(size=d) * 0.3
    return q, keys, values


@pytest.fixture(params=["breadth", "depth"])
def schedule(request):
    return request.param


class TestSafety:
    """No pruned token may have true probability above the threshold.

    "True" here means the probability computed from the quantized operands
    (the algorithm certifies with respect to the 12-bit scores it acts on).
    """

    @pytest.mark.parametrize("seed", range(6))
    def test_no_dominant_token_pruned(self, seed, schedule):
        q, keys, values = _instance(seed)
        cfg = TokenPickerConfig(threshold=1e-3, schedule=schedule)
        r = token_picker_scores(q, keys, cfg)
        # probabilities of the quantized scores the algorithm saw
        s = r.scores
        p = np.exp(s - s.max())
        p /= p.sum()
        violated = (~r.kept) & (p > cfg.threshold + 1e-12)
        assert not violated.any()

    @pytest.mark.parametrize("thr", [1e-4, 1e-3, 1e-2])
    def test_safety_across_thresholds(self, thr, schedule):
        q, keys, values = _instance(99, t=128)
        cfg = TokenPickerConfig(threshold=thr, schedule=schedule)
        r = token_picker_scores(q, keys, cfg)
        p = np.exp(r.scores - r.scores.max())
        p /= p.sum()
        assert np.all(p[~r.kept] <= thr + 1e-12)

    def test_float_reference_safety_with_quant_slack(self, schedule):
        """Against the float reference, violations stay within quantization noise."""
        q, keys, values = _instance(7)
        cfg = TokenPickerConfig(threshold=1e-3, schedule=schedule)
        r = token_picker_attention(q, keys, values, cfg)
        err = pruning_error(q, keys, values, r.kept, r.output)
        # quantization can shift borderline probabilities slightly
        assert err.max_pruned_probability <= cfg.threshold * 3


class TestAccounting:
    def test_chunk_counts_bounded(self, schedule):
        q, keys, _ = _instance(1)
        cfg = TokenPickerConfig(schedule=schedule)
        r = token_picker_scores(q, keys, cfg)
        assert np.all(r.chunks_fetched >= 1)
        assert np.all(r.chunks_fetched <= cfg.quant.n_chunks)
        # kept tokens must have fetched everything
        assert np.all(r.chunks_fetched[r.kept] == cfg.quant.n_chunks)

    def test_stats_consistency(self, schedule):
        q, keys, _ = _instance(2)
        cfg = TokenPickerConfig(schedule=schedule)
        r = token_picker_scores(q, keys, cfg)
        s = r.stats
        assert s.n_kept == int(r.kept.sum())
        assert s.k_chunks_fetched == int(r.chunks_fetched.sum())
        assert s.v_vectors_fetched == s.n_kept
        assert s.k_bits_fetched <= s.baseline_k_bits
        assert s.v_bits_fetched <= s.baseline_v_bits
        assert s.total_reduction >= 1.0

    def test_reduction_ratios(self):
        q, keys, _ = _instance(3, sharpness=4.0)
        cfg = TokenPickerConfig(threshold=1e-3)
        r = token_picker_scores(q, keys, cfg)
        # peaky instance: strong V pruning, K reduced but >= 1/3 of baseline
        assert r.stats.v_pruning_ratio > 2.0
        assert 1.0 <= r.stats.k_reduction <= cfg.quant.n_chunks

    def test_merged_stats(self):
        q, keys, _ = _instance(4)
        cfg = TokenPickerConfig()
        a = token_picker_scores(q, keys, cfg).stats
        b = token_picker_scores(q, keys, cfg).stats
        m = a.merged(b)
        assert m.n_tokens == 2 * a.n_tokens
        assert m.k_chunks_fetched == 2 * a.k_chunks_fetched

    def test_merged_stats_format_mismatch(self):
        q, keys, _ = _instance(5)
        a = token_picker_scores(q, keys, TokenPickerConfig()).stats
        cfg8 = TokenPickerConfig(quant=QuantConfig(total_bits=8, chunk_bits=4))
        b = token_picker_scores(q, keys, cfg8).stats
        with pytest.raises(ValueError):
            a.merged(b)


class TestOutput:
    def test_probs_sum_to_one_over_kept(self, schedule):
        q, keys, values = _instance(6)
        r = token_picker_attention(q, keys, values, TokenPickerConfig(schedule=schedule))
        assert np.isclose(r.probs.sum(), 1.0)
        assert np.all(r.probs[~r.kept] == 0.0)

    def test_output_close_to_exact_for_tiny_threshold(self, schedule):
        q, keys, values = _instance(8)
        cfg = TokenPickerConfig(threshold=1e-9, schedule=schedule)
        r = token_picker_attention(q, keys, values, cfg)
        exact = exact_attention(q, keys, values)
        # only quantization error remains
        assert np.linalg.norm(r.output - exact) < 0.05 * np.linalg.norm(exact) + 0.05

    def test_output_error_shrinks_with_threshold(self):
        q, keys, values = _instance(9, sharpness=3.0)
        errs = []
        for thr in (1e-2, 1e-3, 1e-4):
            r = token_picker_attention(q, keys, values, TokenPickerConfig(threshold=thr))
            errs.append(pruning_error(q, keys, values, r.kept, r.output).output_l2)
        assert errs[0] >= errs[-1]

    def test_mismatched_value_shape_rejected(self):
        q, keys, values = _instance(10)
        with pytest.raises(ValueError):
            token_picker_attention(q, keys, values[:-1], TokenPickerConfig())


class TestEdgeCases:
    def test_empty_sequence(self, schedule):
        cfg = TokenPickerConfig(schedule=schedule)
        r = token_picker_attention(
            np.ones(8), np.zeros((0, 8)), np.zeros((0, 8)), cfg
        )
        assert r.stats.n_tokens == 0
        assert np.allclose(r.output, 0.0)

    def test_single_token_always_kept(self, schedule):
        rng = np.random.default_rng(0)
        q, k, v = rng.normal(size=8), rng.normal(size=(1, 8)), rng.normal(size=(1, 8))
        r = token_picker_attention(q, k, v, TokenPickerConfig(schedule=schedule))
        assert r.kept.tolist() == [True]
        assert np.isclose(r.probs[0], 1.0)

    def test_guard_prevents_pruning_recent_tokens(self, schedule):
        q, keys, _ = _instance(11, sharpness=6.0)
        cfg = TokenPickerConfig(threshold=0.5, prompt_guard=4, schedule=schedule)
        r = token_picker_scores(q, keys, cfg)
        assert np.all(r.kept[-4:])

    def test_zero_guard_allows_pruning_last_token(self, schedule):
        q, keys, _ = _instance(12, sharpness=6.0)
        cfg = TokenPickerConfig(threshold=0.5, prompt_guard=0, schedule=schedule)
        r = token_picker_scores(q, keys, cfg)
        # with an extreme threshold nearly everything can go, including t-1
        assert r.stats.n_kept <= r.stats.n_tokens

    def test_identical_keys_keep_at_least_guard(self, schedule):
        # degenerate instance: all keys identical -> uniform probabilities
        q = np.ones(8)
        keys = np.ones((64, 8))
        cfg = TokenPickerConfig(threshold=1e-3, schedule=schedule)
        r = token_picker_scores(q, keys, cfg)
        # uniform p = 1/64 > 1e-3: nothing can be pruned
        assert r.stats.n_kept == 64

    def test_all_tokens_below_threshold_keeps_guard_only(self, schedule):
        # uniform p = 1/t <= thr: everything except the guard may be pruned
        q = np.ones(8)
        keys = np.ones((64, 8))
        cfg = TokenPickerConfig(threshold=0.5, schedule=schedule, prompt_guard=1)
        r = token_picker_scores(q, keys, cfg)
        assert r.kept[-1]


class TestBreadthIncrementalDenominator:
    """`_run_breadth` maintains ln(D) incrementally (frozen dead part +
    logaddexp over the bounds that tightened this round) instead of a
    full-array logsumexp per round; this pins the refactor against a
    reimplementation of the full recompute.

    What "identical" means here: the two schemes sum the same terms in
    different association orders, so the last float64 ulp of ln(D) can
    legitimately differ — no incremental scheme can reproduce the full
    recompute's pairwise-summation bits.  The pin is therefore (a) exact
    equality of every *decision* the denominator drives (`kept`,
    `chunks_fetched`) across a seed x threshold grid, and (b) ln(D)
    itself to 1e-12 relative.  Safety never depends on those last bits:
    any lower-bound denominator keeps the certificate sound (tested
    below), and the serving-path bit-identity contract (batched vs
    ragged kernels) is unaffected — both share one denominator
    expression."""

    def _full_recompute_reference(self, q, keys, cfg):
        from repro.core.margins import margin_pairs
        from repro.core.pruning import (
            _chunk_score_table,
            _guard_mask,
            _logsumexp_1d,
            _quantize_operands,
        )

        q_codes, k_codes, score_scale = _quantize_operands(
            q, keys, cfg.quant, None, None
        )
        ps = _chunk_score_table(q_codes, k_codes, cfg.quant)
        margins = margin_pairs(q_codes, cfg.quant)
        guard = _guard_mask(keys.shape[0], cfg.prompt_guard)
        n, n_chunks = ps.shape
        bias = np.zeros(n)
        s_min = ps * score_scale + margins.mins[1:][None, :] * score_scale + bias[:, None]
        s_max = ps * score_scale + margins.maxs[1:][None, :] * score_scale + bias[:, None]
        alive = np.ones(n, dtype=bool)
        chunks = np.zeros(n, dtype=np.int64)
        lb = np.full(n, -np.inf)
        log_den = -np.inf
        for b in range(n_chunks):
            chunks[alive] = b + 1
            lb[alive] = s_min[alive, b]
            log_den = _logsumexp_1d(lb)  # the old full recompute
            prune = alive & ((s_max[:, b] - log_den) <= cfg.log_threshold) & ~guard
            alive = alive & ~prune
            if not alive.any():
                break
        return alive, chunks, log_den

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("thr", [1e-2, 2e-3, 1e-4])
    def test_matches_full_recompute(self, seed, thr):
        q, keys, _ = _instance(seed, t=192)
        cfg = TokenPickerConfig(threshold=thr, schedule="breadth")
        r = token_picker_scores(q, keys, cfg)
        kept_ref, chunks_ref, log_den_ref = self._full_recompute_reference(
            q, keys, cfg
        )
        assert np.array_equal(r.kept, kept_ref)
        assert np.array_equal(r.chunks_fetched, chunks_ref)
        assert np.isclose(r.log_denominator, log_den_ref, rtol=1e-12, atol=0)

    def test_denominator_still_a_lower_bound(self):
        """Safety: the incremental ln(D) must stay <= the exact-score
        denominator (any lower bound keeps the certificate sound)."""
        for seed in range(6):
            q, keys, _ = _instance(seed, t=128)
            cfg = TokenPickerConfig(threshold=1e-3, schedule="breadth")
            r = token_picker_scores(q, keys, cfg)
            true_log_den = float(np.logaddexp.reduce(r.scores))
            assert r.log_denominator <= true_log_den + 1e-9

    def test_all_pruned_early_exit(self):
        """Uniform scores below threshold: every round prunes, the loop
        exits early, and the incremental ln(D) matches the recompute."""
        q = np.ones(8)
        keys = np.ones((64, 8))
        cfg = TokenPickerConfig(threshold=0.5, schedule="breadth", prompt_guard=1)
        r = token_picker_scores(q, keys, cfg)
        kept_ref, chunks_ref, log_den_ref = self._full_recompute_reference(
            q, keys, cfg
        )
        assert np.array_equal(r.kept, kept_ref)
        assert np.isclose(r.log_denominator, log_den_ref, rtol=1e-12, atol=0)


class TestExactThresholdPruning:
    def test_matches_definition(self):
        scores = np.array([0.0, 1.0, 5.0, -3.0])
        p = np.exp(scores - scores.max())
        p /= p.sum()
        kept = exact_threshold_pruning(scores, 1e-2)
        assert np.array_equal(kept, p > 1e-2)

    def test_never_empty(self):
        kept = exact_threshold_pruning(np.zeros(10), 0.5)
        assert kept.sum() == 1

    def test_empty_input(self):
        assert exact_threshold_pruning(np.zeros(0), 0.5).size == 0

    def test_upper_bounds_chunked_pruning(self):
        """Exact pruning (full K on-chip) keeps no more than chunked."""
        q, keys, _ = _instance(20, sharpness=3.0)
        cfg = TokenPickerConfig(threshold=1e-3, prompt_guard=0)
        r = token_picker_scores(q, keys, cfg)
        kept_exact = exact_threshold_pruning(r.scores, cfg.threshold)
        # chunked estimation is conservative: keeps a superset
        assert kept_exact.sum() <= r.stats.n_kept


class TestMultiHead:
    def test_per_head_results(self):
        rng = np.random.default_rng(30)
        H, t, d = 3, 64, 16
        q = rng.normal(size=(H, d))
        keys = rng.normal(size=(H, t, d))
        values = rng.normal(size=(H, t, d))
        results = multi_head_token_picker(q, keys, values, TokenPickerConfig())
        assert len(results) == H
        for r in results:
            assert r.output is not None
            assert r.stats.n_tokens == t

    def test_scores_only(self):
        rng = np.random.default_rng(31)
        q = rng.normal(size=(2, 8))
        keys = rng.normal(size=(2, 16, 8))
        results = multi_head_token_picker(q, keys, None, TokenPickerConfig())
        assert all(r.output is None for r in results)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            multi_head_token_picker(
                np.zeros(8), np.zeros((2, 4, 8)), None, TokenPickerConfig()
            )


class TestConfigValidation:
    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            TokenPickerConfig(threshold=0.0)
        with pytest.raises(ValueError):
            TokenPickerConfig(threshold=1.5)

    def test_bad_order(self):
        with pytest.raises(ValueError):
            TokenPickerConfig(order="random")

    def test_bad_schedule(self):
        with pytest.raises(ValueError):
            TokenPickerConfig(schedule="widthfirst")

    def test_with_threshold_copy(self):
        cfg = TokenPickerConfig(threshold=1e-3)
        cfg2 = cfg.with_threshold(1e-2)
        assert cfg2.threshold == 1e-2 and cfg.threshold == 1e-3

    def test_log_threshold(self):
        cfg = TokenPickerConfig(threshold=1e-3)
        assert np.isclose(cfg.log_threshold, np.log(1e-3))


class TestTrace:
    def test_trace_collection(self, schedule):
        q, keys, _ = _instance(40)
        cfg = TokenPickerConfig(schedule=schedule)
        r = token_picker_scores(q, keys, cfg, collect_trace=True)
        ub = r.trace["log_upper_bound_first_chunk"]
        assert ub.shape == (keys.shape[0],)
        assert np.isfinite(ub).any()
