"""Trace integrity under adversity.

The tracing layer's structural contract: after any drained run —
including runs with preemption, swap-resume, mid-prefill cancellation,
cross-engine adoption and injected replica kills — every span opened was
closed exactly once (``tracer.errors`` empty, ``open_span_count`` zero),
request spans carry a terminal state, and both export formats satisfy
their schema (in particular Perfetto span *nesting* per track).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterRouter, FaultInjector, fault_schedule
from repro.core import TokenPickerConfig
from repro.obs import Tracer, validate_span_log, validate_trace
from repro.serving import RequestState, ServingEngine, synthetic_request
from repro.workloads import failover_trace

N_HEADS, HEAD_DIM = 2, 8

#: every value a closed request span's ``state`` arg may take
TERMINAL_STATES = {
    "finished", "cancelled", "timed_out", "withdrawn", "exported", "lost",
}


def _engine(tracer, **kw):
    kw.setdefault("max_batch_size", 2)
    kw.setdefault("capacity_tokens", 512)
    kw.setdefault("seed", 3)
    return ServingEngine(
        TokenPickerConfig(threshold=2e-3), tracer=tracer, **kw
    )


def _submit(engine, rng, n, prompt_tokens=10, max_new=8):
    return [
        engine.submit(
            synthetic_request(rng, N_HEADS, prompt_tokens, HEAD_DIM, max_new)
        )
        for _ in range(n)
    ]


def _assert_sound(tracer):
    """The invariants every drained traced run must satisfy."""
    assert tracer.errors == []
    assert tracer.open_span_count == 0, tracer.open_spans()
    validate_trace(tracer.to_trace_events())
    import json

    lines = [json.dumps(r) for r in tracer.to_span_records()]
    assert validate_span_log(lines) == len(tracer.events)
    requests = [
        e for e in tracer.events if e.ph == "X" and e.name == "request"
    ]
    assert requests, "run produced no request spans"
    for span in requests:
        assert (span.args or {}).get("state") in TERMINAL_STATES, span
    return requests


class TestSingleEngineIntegrity:
    def test_plain_drain(self):
        tracer = Tracer()
        engine = _engine(tracer)
        _submit(engine, np.random.default_rng(0), 5)
        engine.run_until_drained()
        requests = _assert_sound(tracer)
        assert len(requests) == 5
        assert all(s.args["state"] == "finished" for s in requests)

    def test_preempt_and_resume_spans_nest(self):
        tracer = Tracer()
        engine = _engine(tracer, max_batch_size=2)
        _submit(engine, np.random.default_rng(1), 3, max_new=10)
        for _ in range(3):
            engine.step()
        engine.preempt(next(iter(engine._active)))
        engine.run_until_drained()
        _assert_sound(tracer)
        preempted = [e for e in tracer.events if e.name == "preempted"]
        assert preempted
        # each preempted interval sits inside its request span
        by_track = {
            (e.process, e.thread): e
            for e in tracer.events
            if e.ph == "X" and e.name == "request"
        }
        for span in preempted:
            request = by_track[(span.process, span.thread)]
            assert span.ts_s >= request.ts_s - 1e-9
            assert (
                span.ts_s + span.dur_s
                <= request.ts_s + request.dur_s + 1e-9
            )

    def test_mid_prefill_cancellation(self):
        tracer = Tracer()
        engine = _engine(
            tracer, max_batch_size=4, capacity_tokens=2048,
            prefill_budget_tokens=8,
        )
        ids = _submit(
            engine, np.random.default_rng(2), 3, prompt_tokens=40, max_new=4
        )
        engine.step()  # partial prefill under the tight budget
        done = engine.cancel(ids[0])
        assert done.state == RequestState.CANCELLED
        engine.cancel(ids[1], timed_out=True)
        engine.run_until_drained()
        requests = _assert_sound(tracer)
        states = sorted((s.args or {}).get("state") for s in requests)
        assert states == ["cancelled", "finished", "timed_out"]

    def test_withdraw_pending(self):
        tracer = Tracer()
        engine = _engine(tracer, max_batch_size=1)
        _submit(engine, np.random.default_rng(3), 3)
        engine.step()  # admits one, leaves the rest queued
        withdrawn = engine.withdraw_pending()
        assert withdrawn
        engine.run_until_drained()
        requests = _assert_sound(tracer)
        states = [(s.args or {}).get("state") for s in requests]
        assert states.count("withdrawn") == len(withdrawn)

    def test_export_adopt_across_engines(self):
        tracer = Tracer()
        donor = _engine(tracer, seed=1)
        _submit(donor, np.random.default_rng(5), 1, max_new=8)
        for _ in range(3):
            donor.step()
        rid = next(iter(donor._active))
        request_id = donor._active[rid].request.request_id
        donor.preempt(rid)
        export = donor.export_preempted(request_id)
        adoptee = _engine(tracer, seed=1, trace_label="adoptee")
        adoptee.adopt_preempted(export)
        adoptee.run_until_drained()
        _assert_sound(tracer)
        by_state = {}
        for e in tracer.events:
            if e.ph == "X" and e.name == "request":
                state = (e.args or {}).get("state")
                by_state[state] = by_state.get(state, 0) + 1
        assert by_state == {"exported": 1, "finished": 1}
        adopted = [
            e
            for e in tracer.events
            if e.ph == "X"
            and e.name == "request"
            and (e.args or {}).get("adopted")
        ]
        assert len(adopted) == 1 and adopted[0].process == "adoptee"

    def test_sampled_steps_keep_request_spans_complete(self):
        tracer = Tracer(sample_steps=4)
        engine = _engine(tracer)
        _submit(engine, np.random.default_rng(7), 4)
        reports = engine.run_until_drained()
        requests = _assert_sound(tracer)
        assert len(requests) == 4
        steps = [e for e in tracer.events if e.name == "engine_step"]
        assert 0 < len(steps) < len(reports)


class TestClusterIntegrity:
    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_kills=st.integers(min_value=1, max_value=3),
    )
    def test_faulted_runs_trace_soundly(self, seed, n_kills):
        """Hypothesis sweep: seeded kills/revives/spikes (reusing the
        chaos harness's own schedules) never unbalance the trace."""
        tracer = Tracer()
        router = ClusterRouter(
            3,
            max_batch_size=2,
            capacity_tokens=256,
            seed=13,
            tracer=tracer,
        )
        injector = FaultInjector(
            router,
            fault_schedule(seed, 3, n_kills=n_kills, revive_after=4,
                           n_spikes=1),
        )
        injector.run_trace(
            failover_trace(
                np.random.default_rng(seed % 97),
                n_heads=N_HEADS,
                head_dim=HEAD_DIM,
                n_requests=6,
                arrivals_per_step=1,
                prompt_tokens=10,
                max_new_tokens=8,
                prompt_jitter=6,
                new_token_jitter=6,
            )
        )
        requests = _assert_sound(tracer)
        # all six logical requests finish somewhere; kills may add
        # harvested/lost span instances on the dead incarnation
        finished = sum(
            1 for s in requests if s.args.get("state") == "finished"
        )
        assert finished >= 6
        if injector.stats.kills:
            marks = {e.name for e in tracer.events if e.ph == "i"}
            assert "replica_kill" in marks

    def test_revived_replica_gets_fresh_track(self):
        """A revive must not reuse the dead incarnation's process label:
        adopted spans are anchored in the past and would otherwise
        overlap its closed request spans."""
        tracer = Tracer()
        router = ClusterRouter(
            2, max_batch_size=2, capacity_tokens=256, seed=13, tracer=tracer
        )
        router.kill_replica(0)
        router.revive_replica(0)
        revived = router.replicas[0]
        assert revived.trace_label == "r0+1"
        _submit(revived, np.random.default_rng(11), 2)
        revived.run_until_drained()
        _assert_sound(tracer)
        processes = {e.process for e in tracer.events if e.ph == "X"}
        assert "r0+1" in processes and "r0" not in processes
        # a second revive gets its own incarnation label too
        router.kill_replica(0)
        router.revive_replica(0)
        assert router.replicas[0].trace_label == "r0+2"
