"""Unit tests for fixed-point quantization and bit-chunk decomposition."""

import numpy as np
import pytest

from repro.core.config import QuantConfig
from repro.core.quantization import (
    assemble_from_chunks,
    chunk_plane_values,
    compute_scale,
    dequantize,
    from_unsigned,
    partial_values,
    quantization_error_bound,
    quantize,
    split_chunks,
    to_unsigned,
)

CFG = QuantConfig(total_bits=12, chunk_bits=4)


class TestQuantConfig:
    def test_paper_format(self):
        assert CFG.n_chunks == 3
        assert CFG.qmax == 2047
        assert CFG.qmin == -2048

    def test_known_unknown_bits(self):
        assert CFG.known_bits(1) == 4
        assert CFG.unknown_bits(1) == 8
        assert CFG.residual_max(1) == 255
        assert CFG.residual_max(2) == 15
        assert CFG.residual_max(3) == 0

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            QuantConfig(total_bits=12, chunk_bits=5)
        with pytest.raises(ValueError):
            QuantConfig(total_bits=1, chunk_bits=1)
        with pytest.raises(ValueError):
            QuantConfig(total_bits=8, chunk_bits=0)

    def test_chunk_count_validation(self):
        with pytest.raises(ValueError):
            CFG.known_bits(4)
        with pytest.raises(ValueError):
            CFG.known_bits(-1)


class TestQuantizeRoundtrip:
    def test_scale_maps_maxabs_to_qmax(self):
        x = np.array([-3.0, 1.0, 2.0])
        scale = compute_scale(x, CFG)
        assert np.isclose(scale, 3.0 / 2047)

    def test_zero_tensor_scale_is_one(self):
        assert compute_scale(np.zeros(5), CFG) == 1.0

    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=1000) * 5
        q = quantize(x, CFG)
        err = np.abs(dequantize(q) - x)
        assert np.all(err <= quantization_error_bound(CFG, float(q.scale)) + 1e-12)

    def test_explicit_scale(self):
        x = np.array([1.0, -1.0])
        q = quantize(x, CFG, scale=0.01)
        assert q.values.tolist() == [100, -100]

    def test_clipping(self):
        q = quantize(np.array([100.0, -100.0]), CFG, scale=0.01)
        assert q.values.tolist() == [CFG.qmax, CFG.qmin]

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            quantize(np.ones(3), CFG, scale=-1.0)

    def test_per_axis_scale(self):
        x = np.array([[1.0, 2.0], [10.0, 20.0]])
        q = quantize(x, CFG, axis=1)
        # each row's max maps to qmax
        assert q.values[0, 1] == CFG.qmax
        assert q.values[1, 1] == CFG.qmax


class TestBitPatterns:
    def test_unsigned_roundtrip_extremes(self):
        vals = np.array([CFG.qmin, -1, 0, 1, CFG.qmax], dtype=np.int32)
        assert np.array_equal(from_unsigned(to_unsigned(vals, CFG), CFG), vals)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            to_unsigned(np.array([CFG.qmax + 1]), CFG)

    def test_minus_one_is_all_ones(self):
        assert to_unsigned(np.array([-1], dtype=np.int32), CFG)[0] == 0xFFF


class TestChunks:
    def test_split_assemble_roundtrip(self):
        rng = np.random.default_rng(2)
        vals = rng.integers(CFG.qmin, CFG.qmax + 1, size=500).astype(np.int32)
        chunks = split_chunks(vals, CFG)
        assert chunks.shape == (500, 3)
        assert np.all(chunks >= 0) and np.all(chunks < 16)
        assert np.array_equal(assemble_from_chunks(chunks, CFG), vals)

    def test_known_example(self):
        # -5 = 0xFFB -> chunks [0xF, 0xF, 0xB]
        chunks = split_chunks(np.array([-5], dtype=np.int32), CFG)
        assert chunks[0].tolist() == [0xF, 0xF, 0xB]

    def test_partial_is_lower_bound(self):
        rng = np.random.default_rng(3)
        vals = rng.integers(CFG.qmin, CFG.qmax + 1, size=300).astype(np.int32)
        for b in range(1, CFG.n_chunks + 1):
            partial = partial_values(vals, b, CFG)
            resid = vals.astype(np.int64) - partial
            assert np.all(resid >= 0)
            assert np.all(resid <= CFG.residual_max(b))

    def test_partial_zero_chunks_is_qmin(self):
        assert np.all(partial_values(np.array([5, -5]), 0, CFG) == CFG.qmin)

    def test_partial_all_chunks_exact(self):
        vals = np.array([CFG.qmin, -7, 0, 123, CFG.qmax], dtype=np.int32)
        assert np.array_equal(partial_values(vals, CFG.n_chunks, CFG), vals)

    def test_planes_sum_to_value(self):
        rng = np.random.default_rng(4)
        vals = rng.integers(CFG.qmin, CFG.qmax + 1, size=200).astype(np.int32)
        planes = chunk_plane_values(vals, CFG)
        assert np.array_equal(planes.sum(axis=-1), vals.astype(np.int64))

    def test_planes_prefix_equals_partial(self):
        rng = np.random.default_rng(5)
        vals = rng.integers(CFG.qmin, CFG.qmax + 1, size=200).astype(np.int32)
        planes = chunk_plane_values(vals, CFG)
        for b in range(1, CFG.n_chunks + 1):
            prefix = planes[..., :b].sum(axis=-1)
            assert np.array_equal(prefix, partial_values(vals, b, CFG))

    def test_wrong_chunk_count_rejected(self):
        with pytest.raises(ValueError):
            assemble_from_chunks(np.zeros((4, 2), dtype=np.int64), CFG)


class TestOtherFormats:
    @pytest.mark.parametrize("total,chunk", [(8, 2), (8, 4), (12, 6), (16, 4), (6, 2)])
    def test_roundtrip_other_widths(self, total, chunk):
        cfg = QuantConfig(total_bits=total, chunk_bits=chunk)
        rng = np.random.default_rng(total * 31 + chunk)
        vals = rng.integers(cfg.qmin, cfg.qmax + 1, size=200).astype(np.int32)
        assert np.array_equal(assemble_from_chunks(split_chunks(vals, cfg), cfg), vals)
        for b in range(cfg.n_chunks + 1):
            partial = partial_values(vals, b, cfg)
            resid = vals.astype(np.int64) - partial
            assert np.all(resid >= 0)
            assert np.all(resid <= cfg.residual_max(b))
