"""Tests for the Fig. 2 analytic memory model."""

import pytest

from repro.eval.memory_model import (
    FIG2_BATCH_SIZES,
    FIG2_MODELS,
    fig2_breakdowns,
    kv_fraction_summary,
    step_memory_breakdown,
)
from repro.model.config import get_model_config


class TestStepBreakdown:
    def test_totals_add_up(self):
        bd = step_memory_breakdown(get_model_config("gpt2-xl"), 4, 1024)
        assert bd.total_bytes == bd.weight_bytes + bd.embedding_bytes + bd.kv_bytes
        assert 0 < bd.kv_fraction < 1
        assert abs(bd.kv_fraction + bd.weight_fraction + bd.embedding_fraction - 1) < 1e-12

    def test_kv_scales_with_batch(self):
        cfg = get_model_config("opt-6.7b")
        b1 = step_memory_breakdown(cfg, 1, 2048)
        b8 = step_memory_breakdown(cfg, 8, 2048)
        assert b8.kv_bytes == 8 * b1.kv_bytes
        assert b8.weight_bytes == b1.weight_bytes  # weights shared

    def test_kv_scales_with_context(self):
        cfg = get_model_config("gpt2-xl")
        short = step_memory_breakdown(cfg, 1, 256)
        long = step_memory_breakdown(cfg, 1, 1024)
        assert long.kv_bytes == 4 * short.kv_bytes

    def test_validation(self):
        cfg = get_model_config("gpt2-xl")
        with pytest.raises(ValueError):
            step_memory_breakdown(cfg, 0)
        with pytest.raises(ValueError):
            step_memory_breakdown(cfg, 1, 99999)

    def test_paper_kv_numbers(self):
        """GPT2-XL at full context: ~300 MB of KV per sequence (FP16)."""
        cfg = get_model_config("gpt2-xl")
        kv_mb = cfg.kv_cache_bytes(1024) / 2**20
        assert 250 < kv_mb < 350


class TestFig2:
    def test_all_cells_present(self):
        bds = fig2_breakdowns()
        assert len(bds) == len(FIG2_MODELS) * len(FIG2_BATCH_SIZES)

    def test_headline_fractions(self):
        """Paper: KV is 7.8% at B=1 and 84.3% at B=64 (mean of 3 models)."""
        summary = kv_fraction_summary(fig2_breakdowns())
        assert summary[1] == pytest.approx(0.078, abs=0.05)
        assert summary[64] == pytest.approx(0.843, abs=0.06)

    def test_monotone_in_batch(self):
        summary = kv_fraction_summary(fig2_breakdowns())
        values = [summary[b] for b in sorted(summary)]
        assert all(a < b for a, b in zip(values, values[1:]))
