"""Async streaming frontend: streams, deadlines, overload control.

Covers the :mod:`repro.serving.frontend` layer: per-token streaming with
ordered events, explicit cancellation and wall-clock deadlines that
release KV mid-flight, the degrade-then-shed overload controller
(threshold ladder, hysteresis, retry-after shed errors) and the metrics
counters the ``--profile`` flag exports.
"""

import asyncio
import math

import numpy as np
import pytest

from repro.cluster import ClusterRouter, MetricsRegistry
from repro.serving import (
    AsyncStreamingFrontend,
    OverloadController,
    RequestState,
    SLOConfig,
    ServingEngine,
    ShedError,
    synthetic_request,
)

N_HEADS, HEAD_DIM = 2, 8


def _engine(**kw) -> ServingEngine:
    kw.setdefault("max_batch_size", 4)
    kw.setdefault("capacity_tokens", 2048)
    kw.setdefault("seed", 3)
    return ServingEngine(**kw)


def _request(rng, prompt=12, max_new=8):
    return synthetic_request(rng, N_HEADS, prompt, HEAD_DIM, max_new)


def _run(coro):
    return asyncio.run(coro)


class TestStreaming:
    def test_tokens_stream_in_order_then_terminal(self):
        async def scenario():
            rng = np.random.default_rng(0)
            frontend = AsyncStreamingFrontend(_engine())
            async with frontend:
                stream = await frontend.submit(_request(rng, max_new=6))
                events = [event async for event in stream]
            return events, stream.result

        events, result = _run(scenario())
        assert [e.ordinal for e in events] == list(range(6))
        # context grows by one token per event
        lengths = [e.context_length for e in events]
        assert lengths == sorted(lengths)
        assert result.state == RequestState.FINISHED
        assert result.stats.generated_tokens == 6

    def test_concurrent_streams_complete(self):
        async def scenario():
            rng = np.random.default_rng(1)
            frontend = AsyncStreamingFrontend(_engine(max_batch_size=2))
            async with frontend:
                streams = [
                    await frontend.submit(_request(rng, max_new=5))
                    for _ in range(5)
                ]
                results = [await s.drain() for s in streams]
            return results

        results = _run(scenario())
        assert len(results) == 5
        assert all(r.state == RequestState.FINISHED for r in results)
        assert all(r.stats.generated_tokens == 5 for r in results)

    def test_cluster_backend_streams(self):
        async def scenario():
            rng = np.random.default_rng(2)
            router = ClusterRouter(
                2, max_batch_size=2, capacity_tokens=512, seed=5
            )
            frontend = AsyncStreamingFrontend(router)
            async with frontend:
                streams = [
                    await frontend.submit(_request(rng, max_new=4))
                    for _ in range(4)
                ]
                results = [await s.drain() for s in streams]
            return router, results

        router, results = _run(scenario())
        assert all(r.state == RequestState.FINISHED for r in results)
        assert router.summary()["requests_completed"] == 4


class TestCancellationAndDeadlines:
    def test_cancel_before_start_releases_and_reports(self):
        async def scenario():
            rng = np.random.default_rng(3)
            engine = _engine(max_batch_size=1)
            frontend = AsyncStreamingFrontend(engine)
            keep = await frontend.submit(_request(rng, max_new=6))
            victim = await frontend.submit(_request(rng, max_new=6))
            victim.cancel()
            victim.cancel()  # idempotent once terminal
            frontend.start()
            done_keep = await keep.drain()
            done_victim = await victim.drain()
            await frontend.close()
            return engine, frontend, done_keep, done_victim

        engine, frontend, done_keep, done_victim = _run(scenario())
        assert done_keep.state == RequestState.FINISHED
        assert done_victim.state == RequestState.CANCELLED
        assert done_victim.stats.generated_tokens == 0
        assert engine.pool.blocks_in_use == 0
        assert (
            frontend.registry.counter("requests_cancelled").value == 1
        )

    def test_deadline_times_out_and_frees(self):
        async def scenario():
            rng = np.random.default_rng(4)
            engine = _engine(max_batch_size=1)
            # a fake clock far past any deadline: expiry is deterministic
            frontend = AsyncStreamingFrontend(
                engine, clock=lambda: 1e9
            )
            async with frontend:
                doomed = await frontend.submit(
                    _request(rng, max_new=64), deadline_ms=1.0
                )
                result = await doomed.drain()
            return engine, frontend, result

        engine, frontend, result = _run(scenario())
        assert result.state == RequestState.TIMED_OUT
        assert engine.timed_out_total == 1
        assert engine.pool is None or engine.pool.blocks_in_use == 0
        assert (
            frontend.registry.counter("requests_timed_out").value == 1
        )

    def test_submit_after_close_raises(self):
        async def scenario():
            rng = np.random.default_rng(5)
            frontend = AsyncStreamingFrontend(_engine())
            async with frontend:
                pass
            with pytest.raises(RuntimeError):
                await frontend.submit(_request(rng))

        _run(scenario())


class TestOverloadController:
    SLO = dict(
        p95_inter_token_ms=10.0,
        window_steps=4,
        degrade_factor=5.0,
        max_degrade_level=2,
        hysteresis_windows=2,
    )

    def test_degrades_then_sheds_then_recovers(self):
        controller = OverloadController(1e-3, SLOConfig(**self.SLO))
        hot, calm = 0.020, 0.002
        for step in range(12):  # 3 hot windows
            controller.observe_step(step, hot)
        assert controller.level == 2 and controller.shedding
        assert not controller.admit()
        assert controller.threshold == pytest.approx(1e-3 * 25)
        for step in range(12, 12 + 4 * 8):  # calm windows
            controller.observe_step(step, calm)
        assert controller.level == 0 and not controller.shedding
        assert controller.threshold == pytest.approx(1e-3)
        # shedding stopped before any rung unwound
        sheds = [s.shedding for s in controller.timeline]
        levels = [s.level for s in controller.timeline]
        assert sheds.index(False, sheds.index(True)) <= levels.index(
            1, levels.index(2)
        )

    def test_threshold_ladder_capped(self):
        slo = SLOConfig(max_threshold=0.05, **{
            k: v for k, v in self.SLO.items() if k != "p95_inter_token_ms"
        }, p95_inter_token_ms=10.0)
        controller = OverloadController(1e-2, slo)
        for step in range(8):
            controller.observe_step(step, 1.0)
        assert controller.level == 2
        assert controller.threshold == 0.05  # capped below 1e-2 * 25

    def test_hysteresis_requires_consecutive_calm(self):
        controller = OverloadController(1e-3, SLOConfig(**self.SLO))
        for step in range(4):
            controller.observe_step(step, 0.020)
        assert controller.level == 1
        # calm, then borderline (between recover and breach), then calm:
        # the borderline window resets the streak, so no recovery yet
        for step in range(4, 8):
            controller.observe_step(step, 0.002)
        for step in range(8, 12):
            controller.observe_step(step, 0.009)
        for step in range(12, 16):
            controller.observe_step(step, 0.002)
        assert controller.level == 1
        for step in range(16, 20):
            controller.observe_step(step, 0.002)
        assert controller.level == 0

    def test_empty_window_is_skipped_gracefully(self):
        controller = OverloadController(1e-3, SLOConfig(**self.SLO))
        sample = None
        for step in range(4):
            sample = controller.observe_step(step, 0.0)
        assert sample is not None
        assert not math.isnan(sample.p95_ms)

    def test_shed_error_carries_retry_hint(self):
        async def scenario():
            rng = np.random.default_rng(6)
            slo = SLOConfig(retry_after_steps=17, **self.SLO)
            frontend = AsyncStreamingFrontend(_engine(), slo=slo)
            frontend.controller.shedding = True
            with pytest.raises(ShedError) as exc:
                await frontend.submit(_request(rng))
            assert exc.value.retry_after_steps == 17
            assert (
                frontend.registry.counter("requests_shed").value == 1
            )

        _run(scenario())

    def test_frontend_actuates_threshold(self):
        """A frontend with a hot synthetic cost model must tighten the
        engine's live keep threshold."""

        async def scenario():
            rng = np.random.default_rng(7)
            engine = _engine(max_batch_size=2)
            slo = SLOConfig(
                p95_inter_token_ms=1e-6,  # everything breaches
                window_steps=2,
                degrade_factor=5.0,
                max_degrade_level=2,
            )
            frontend = AsyncStreamingFrontend(engine, slo=slo)
            async with frontend:
                streams = [
                    await frontend.submit(_request(rng, max_new=16))
                    for _ in range(3)
                ]
                for stream in streams:
                    try:
                        await stream.drain()
                    except ShedError:  # pragma: no cover
                        pass
            return engine, frontend

        engine, frontend = _run(scenario())
        assert frontend.controller.level == 2
        assert engine.config.threshold == pytest.approx(1e-3 * 25)
        assert (
            frontend.registry.gauge("keep_threshold_degrade_level").value
            == 2
        )

    def test_registry_exports_all_counters(self):
        frontend = AsyncStreamingFrontend(
            _engine(), slo=SLOConfig(), registry=MetricsRegistry()
        )
        snapshot = frontend.registry.snapshot()
        for name in (
            "requests_cancelled",
            "requests_timed_out",
            "requests_shed",
            "keep_threshold_degrade_level",
            "overload_shedding",
        ):
            assert name in snapshot, name

    def test_slo_config_validation(self):
        with pytest.raises(ValueError):
            SLOConfig(p95_inter_token_ms=0.0)
        with pytest.raises(ValueError):
            SLOConfig(degrade_factor=1.0)
        with pytest.raises(ValueError):
            SLOConfig(max_threshold=1.0)
        with pytest.raises(ValueError):
            SLOConfig(recover_ratio=0.0)
        with pytest.raises(ValueError):
            OverloadController(0.0, SLOConfig())
