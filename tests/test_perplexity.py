"""Tests for perplexity evaluation with pluggable backends."""

import numpy as np
import pytest

from repro.core import TokenPickerConfig
from repro.eval.perplexity import (
    PPLDeltaMetric,
    backend_perplexity_and_traffic,
    corpus_perplexity,
    sequence_nll,
)
from repro.model import TinyGPT, tiny_config
from repro.model.attention import ExactAttentionBackend, TokenPickerBackend
from repro.workloads import markov_corpus


@pytest.fixture(scope="module")
def model():
    cfg = tiny_config(
        name="ppl-test", n_layers=1, d_model=32, n_heads=2, vocab_size=16,
        max_context=64,
    )
    return TinyGPT(cfg, seed=0)


@pytest.fixture(scope="module")
def corpus():
    return markov_corpus(2000, vocab_size=16, seed=1)


class TestSequenceNLL:
    def test_untrained_model_near_uniform(self, model, corpus):
        r = sequence_nll(model, corpus[:48])
        assert abs(r.nll - np.log(16)) < 0.5
        assert r.n_tokens == 47

    def test_ppl_is_exp_nll(self, model, corpus):
        r = sequence_nll(model, corpus[:32])
        assert np.isclose(r.ppl, np.exp(r.nll))

    def test_backend_none_matches_exact_backend(self, model, corpus):
        r1 = sequence_nll(model, corpus[:32])
        r2 = sequence_nll(model, corpus[:32], ExactAttentionBackend())
        assert np.isclose(r1.nll, r2.nll, atol=1e-10)

    def test_short_sequence_rejected(self, model):
        with pytest.raises(ValueError):
            sequence_nll(model, np.array([1]))


class TestCorpusPerplexity:
    def test_windows_respected(self, model, corpus):
        r = corpus_perplexity(model, corpus, window=32, max_windows=2)
        assert r.n_tokens == 2 * 31

    def test_window_capped_to_context(self, model, corpus):
        r = corpus_perplexity(model, corpus, window=1000, max_windows=1)
        assert r.n_tokens == model.config.max_context - 1

    def test_tiny_threshold_is_lossless(self, model, corpus):
        ref = corpus_perplexity(model, corpus, window=32, max_windows=2)
        pruned = corpus_perplexity(
            model, corpus,
            lambda: TokenPickerBackend(TokenPickerConfig(threshold=1e-9)),
            window=32, max_windows=2,
        )
        assert pruned.ppl == pytest.approx(ref.ppl, rel=0.02)

    def test_corpus_too_short(self, model):
        with pytest.raises(ValueError):
            corpus_perplexity(model, np.arange(4) % 16, window=32, max_windows=1)


class TestTrafficAccounting:
    def test_ppl_and_traffic_consistent(self, model, corpus):
        result, counter = backend_perplexity_and_traffic(
            model, corpus,
            lambda: TokenPickerBackend(TokenPickerConfig(threshold=1e-2)),
            window=32, max_windows=2,
        )
        assert result.n_tokens == 2 * 31
        assert counter.tokens_seen > 0
        assert counter.k_bits <= counter.baseline_k_bits
        assert counter.v_bits <= counter.baseline_v_bits

    def test_exact_backend_full_traffic(self, model, corpus):
        _, counter = backend_perplexity_and_traffic(
            model, corpus, ExactAttentionBackend, window=32, max_windows=1
        )
        assert counter.k_bits == counter.baseline_k_bits


class TestPPLDeltaMetric:
    def test_monotone_in_threshold(self, model, corpus):
        metric = PPLDeltaMetric(model, corpus, window=32, max_windows=2)
        d_small = metric(1e-9)
        d_large = metric(0.2)
        assert d_small == pytest.approx(0.0, abs=0.05)
        assert d_large >= d_small - 0.05
        assert len(metric.evaluations) == 2

    def test_reference_cached(self, model, corpus):
        metric = PPLDeltaMetric(model, corpus, window=32, max_windows=2)
        assert metric.reference.ppl > 1.0
