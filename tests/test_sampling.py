"""Tests for decoding strategies."""

import numpy as np
import pytest

from repro.model import TinyGPT, tiny_config
from repro.model.sampling import (
    generate_with_sampler,
    greedy_sampler,
    temperature_sampler,
    top_k_sampler,
    top_p_sampler,
)


@pytest.fixture(scope="module")
def model():
    return TinyGPT(
        tiny_config(name="samp", n_layers=1, d_model=16, n_heads=2,
                    vocab_size=11, max_context=32),
        seed=2,
    )


LOGITS = np.array([0.0, 5.0, 1.0, -2.0, 4.0])


class TestSamplers:
    def test_greedy(self):
        assert greedy_sampler()(LOGITS) == 1

    def test_temperature_deterministic_per_seed(self):
        a = temperature_sampler(1.0, seed=3)
        b = temperature_sampler(1.0, seed=3)
        assert [a(LOGITS) for _ in range(5)] == [b(LOGITS) for _ in range(5)]

    def test_low_temperature_approaches_greedy(self):
        s = temperature_sampler(1e-3, seed=0)
        assert all(s(LOGITS) == 1 for _ in range(5))

    def test_top_k_restricts_support(self):
        s = top_k_sampler(2, seed=0)
        draws = {s(LOGITS) for _ in range(50)}
        assert draws <= {1, 4}

    def test_top_k_larger_than_vocab(self):
        s = top_k_sampler(100, seed=0)
        assert 0 <= s(LOGITS) < 5

    def test_top_p_restricts_support(self):
        # probs ~ [0.6%, 59%, 1.7%, 0.08%, 22%]; p=0.5 keeps only token 1
        s = top_p_sampler(0.5, seed=0)
        assert all(s(LOGITS) == 1 for _ in range(10))

    def test_top_p_one_is_full_distribution(self):
        s = top_p_sampler(1.0, seed=0)
        draws = {s(LOGITS) for _ in range(100)}
        assert len(draws) >= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            temperature_sampler(0.0)
        with pytest.raises(ValueError):
            top_k_sampler(0)
        with pytest.raises(ValueError):
            top_p_sampler(0.0)
        with pytest.raises(ValueError):
            top_k_sampler(3, temperature=0.0)


class TestGenerateWithSampler:
    def test_greedy_matches_model_generate(self, model):
        prompt = np.array([1, 2, 3])
        r = generate_with_sampler(model, prompt, 6)
        expected = model.generate(prompt, 6)
        assert np.array_equal(r.tokens, expected)
        assert len(r.generated) == 6
        assert r.entropies.shape == (6,)

    def test_entropies_positive(self, model):
        r = generate_with_sampler(model, np.array([1, 2]), 5)
        assert np.all(r.entropies > 0)

    def test_with_pruned_backend(self, model):
        from repro.core import TokenPickerConfig
        from repro.model.attention import TokenPickerBackend

        backend = TokenPickerBackend(TokenPickerConfig(threshold=1e-2))
        r = generate_with_sampler(
            model, np.array([1, 2, 3]), 5, top_k_sampler(3, seed=1), backend
        )
        assert len(r.tokens) == 8
        assert backend.counter.tokens_seen > 0

    def test_validation(self, model):
        with pytest.raises(ValueError):
            generate_with_sampler(model, np.array([]), 3)
        with pytest.raises(ValueError):
            generate_with_sampler(model, np.arange(3) % 11, 1000)
