"""Tests for the fixed-point EXP/LN units and their safety direction."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.fixedpoint import (
    ConservativeExpUnit,
    FixedPointExp,
    FixedPointFormat,
    FixedPointLn,
    Pow2LUT,
)


class TestFormat:
    def test_ranges(self):
        fmt = FixedPointFormat(8, 24)
        assert fmt.total_bits == 32
        assert fmt.max_value == pytest.approx(128.0, rel=1e-6)
        assert fmt.min_value == -128.0

    def test_roundtrip_direction(self):
        fmt = FixedPointFormat(8, 24)
        x = 1.23456789
        down = fmt.to_float(fmt.to_fixed(x, "down"))
        up = fmt.to_float(fmt.to_fixed(x, "up"))
        assert down <= x <= up
        assert up - down <= 2.0 / fmt.scale

    def test_saturation(self):
        fmt = FixedPointFormat(4, 4)
        assert fmt.to_float(fmt.to_fixed(1000.0)) == fmt.max_value
        assert fmt.to_float(fmt.to_fixed(-1000.0)) == fmt.min_value

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedPointFormat(0, 4)


class TestPow2LUT:
    def test_bounds(self):
        lut = Pow2LUT(64)
        for f in np.linspace(0, 0.999, 50):
            q30 = int(f * (1 << 30))
            down = lut.lookup(q30, "down") / (1 << 30)
            up = lut.lookup(q30, "up") / (1 << 30)
            true = 2.0**f
            assert down <= true <= up

    def test_range_validation(self):
        lut = Pow2LUT(64)
        with pytest.raises(ValueError):
            lut.lookup(1 << 30, "down")
        with pytest.raises(ValueError):
            Pow2LUT(1)


class TestFixedPointExp:
    @given(x=st.floats(-80, 80))
    @settings(max_examples=200)
    def test_directional_bounds(self, x):
        unit = FixedPointExp()
        down = unit(x, "down")
        up = unit(x, "up")
        true = math.exp(x)
        assert down <= true * (1 + 1e-12)
        assert up >= true * (1 - 1e-12)

    def test_relative_error_bounded(self):
        unit = FixedPointExp(lut_entries=256)
        step = 2.0 ** (1.0 / 256) - 1.0
        for x in np.linspace(-20, 20, 101):
            down = unit(x, "down")
            true = math.exp(x)
            assert down >= true * (1 - 2 * step) - 1e-12

    def test_monotone(self):
        unit = FixedPointExp()
        xs = np.linspace(-10, 10, 201)
        vals = [unit(float(x), "down") for x in xs]
        assert all(a <= b + 1e-15 for a, b in zip(vals, vals[1:]))

    def test_up_never_zero(self):
        unit = FixedPointExp()
        assert unit(-1000.0, "up") > 0.0

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            FixedPointExp()(float("nan"))

    def test_bad_rounding(self):
        with pytest.raises(ValueError):
            FixedPointExp()(1.0, "nearest")


class TestFixedPointLn:
    @given(y=st.floats(1e-20, 1e20))
    @settings(max_examples=200)
    def test_directional_bounds(self, y):
        unit = FixedPointLn()
        assert unit(y, "down") <= math.log(y) + 1e-12
        assert unit(y, "up") >= math.log(y) - 1e-12

    def test_positive_input_required(self):
        unit = FixedPointLn()
        with pytest.raises(ValueError):
            unit(0.0)
        with pytest.raises(ValueError):
            unit(-1.0)

    def test_monotone(self):
        unit = FixedPointLn()
        ys = np.geomspace(1e-6, 1e6, 121)
        vals = [unit(float(y), "down") for y in ys]
        assert all(a <= b + 1e-12 for a, b in zip(vals, vals[1:]))


class TestConservativeUnit:
    def test_certificate_direction(self):
        """exp_upper(s_max)/exp_lower-sum >= true ratio: hardware p'' still
        dominates the true probability."""
        unit = ConservativeExpUnit()
        rng = np.random.default_rng(0)
        for _ in range(50):
            scores = rng.normal(size=10) * 3
            s_max = scores.max() + 0.5
            true_ratio = math.exp(s_max) / sum(math.exp(s) for s in scores)
            hw_den = sum(unit.exp_lower(s) for s in scores)
            hw_ratio = unit.exp_upper(s_max) / hw_den
            assert hw_ratio >= true_ratio * (1 - 1e-12)

    def test_log_predicate_direction(self):
        """s_max - ln_lower(D_hw) >= s_max - ln(D): the hardware predicate
        is conservative (prunes a subset of what exact math would)."""
        unit = ConservativeExpUnit()
        rng = np.random.default_rng(1)
        for _ in range(50):
            scores = rng.normal(size=8) * 2
            d_true = sum(math.exp(s) for s in scores)
            d_hw = sum(unit.exp_lower(s) for s in scores)
            assert unit.ln_lower(d_hw) <= math.log(d_true) + 1e-12

    def test_relative_step(self):
        assert ConservativeExpUnit(256).relative_step == pytest.approx(
            2 ** (1 / 256) - 1
        )
