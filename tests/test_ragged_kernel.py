"""Ragged-batch kernel equivalence: fused == N independent batched calls.

The serving engine's correctness rests on one property: packing N
sequences with mixed context lengths into one fused kernel call changes
*nothing* — every per-sequence output array, every pruning decision and
every traffic statistic is bit-identical to calling
``token_picker_attention_batched`` on each sequence alone.  These tests
assert exact (``array_equal``, not ``allclose``) equality, property-based
over mixed lengths, head counts, thresholds, chunk formats, biases and
frozen-vs-derived scales.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    QuantConfig,
    TokenPickerConfig,
    token_picker_attention_batched,
    token_picker_attention_ragged,
)
from repro.core.pruning import KernelScratch
from repro.core.quantization import split_chunks


def _make_batch(rng, n_seqs, n_heads, head_dim, max_len, with_bias):
    lengths = rng.integers(1, max_len + 1, size=n_seqs)
    qs, keys, values, biases = [], [], [], []
    for t in lengths:
        k = rng.normal(size=(n_heads, int(t), head_dim))
        v = rng.normal(size=(n_heads, int(t), head_dim))
        q = k[:, -1] * 2 + 0.3 * rng.normal(size=(n_heads, head_dim))
        qs.append(q)
        keys.append(k)
        values.append(v)
        biases.append(0.1 * rng.normal(size=(n_heads, int(t))) if with_bias else None)
    return np.stack(qs), keys, values, (biases if with_bias else None)


def _build_arena(keys, values, k_sc, v_sc, quant, dtype, gap=5):
    """Token-major packed arena (unshifted chunk digits + deq V) with dead
    inter-segment gaps, as the serving pool lays sequences out."""
    n_seqs = len(keys)
    n_heads, _, head_dim = keys[0].shape
    cap = sum(int(k.shape[1]) for k in keys) + gap * (n_seqs + 1)
    k_arena = np.zeros((cap, n_heads * quant.n_chunks, head_dim), dtype=dtype)
    v_arena = np.zeros((cap, n_heads, head_dim))
    segments = np.zeros((n_seqs, 2), dtype=np.int64)
    offset = gap
    for s in range(n_seqs):
        t = int(keys[s].shape[1])
        codes = np.clip(
            np.rint(keys[s] / k_sc[s][:, None, None]), quant.qmin, quant.qmax
        ).astype(np.int64)
        digits = split_chunks(codes, quant)  # (H, t, d, C) unsigned
        sign_threshold = 1 << (quant.chunk_bits - 1)
        wrap = 1 << quant.chunk_bits
        first = digits[..., 0]
        digits[..., 0] = np.where(
            first >= sign_threshold, first - wrap, first
        )
        k_arena[offset:offset + t] = digits.transpose(1, 0, 3, 2).reshape(
            t, n_heads * quant.n_chunks, head_dim
        )
        vsc = v_sc[s][:, None, None]
        v_arena[offset:offset + t] = (
            np.clip(np.rint(values[s] / vsc), quant.qmin, quant.qmax) * vsc
        ).transpose(1, 0, 2)
        segments[s] = (offset, t)
        offset += t + gap
    return k_arena, v_arena, segments


def _assert_identical(ragged_result, independent, scores="exact"):
    """Bit-identity of every decision-bearing field.

    ``scores="exact"`` additionally requires the full score matrix to
    match (the eager kernel's contract).  ``scores="bound"`` is the lazy
    kernel's contract: kept tokens' scores are still the exact
    full-depth values, while a pruned token's reported score is its
    certified upper bound at the round that pruned it (``p'' >= p``,
    so the reported score dominates the exact one; its remaining chunks
    are never fetched).
    """
    assert np.array_equal(ragged_result.kept, independent.kept)
    assert np.array_equal(ragged_result.chunks_fetched, independent.chunks_fetched)
    if scores == "exact":
        assert np.array_equal(ragged_result.scores, independent.scores)
    else:
        kept = independent.kept
        assert np.array_equal(ragged_result.scores[kept], independent.scores[kept])
        pruned_lazy = ragged_result.scores[~kept]
        pruned_exact = independent.scores[~kept]
        assert np.all(
            pruned_lazy >= pruned_exact - (1e-9 + 1e-9 * np.abs(pruned_exact))
        )
    assert np.array_equal(ragged_result.probs, independent.probs)
    assert np.array_equal(
        ragged_result.log_denominators, independent.log_denominators
    )
    if independent.outputs is None:
        assert ragged_result.outputs is None
    else:
        assert np.array_equal(ragged_result.outputs, independent.outputs)
    assert ragged_result.stats() == independent.stats()


class TestBitIdenticalEquivalence:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_seqs=st.integers(1, 6),
        n_heads=st.integers(1, 3),
        max_len=st.integers(1, 160),
        threshold=st.sampled_from([1e-2, 2e-3, 1e-4]),
        with_bias=st.booleans(),
        frozen_scales=st.booleans(),
    )
    def test_property_mixed_lengths(
        self, seed, n_seqs, n_heads, max_len, threshold, with_bias, frozen_scales
    ):
        rng = np.random.default_rng(seed)
        head_dim = int(rng.integers(4, 33))
        config = TokenPickerConfig(threshold=threshold)
        qs, keys, values, biases = _make_batch(
            rng, n_seqs, n_heads, head_dim, max_len, with_bias
        )
        scales = {}
        if frozen_scales:
            scales = {
                "q_scales": rng.uniform(0.005, 0.05, size=(n_seqs, n_heads)),
                "k_scales": rng.uniform(0.005, 0.05, size=(n_seqs, n_heads)),
                "v_scales": rng.uniform(0.005, 0.05, size=(n_seqs, n_heads)),
            }
        ragged = token_picker_attention_ragged(
            qs, keys, values, config, score_bias=biases, **scales
        )
        for s in range(n_seqs):
            independent = token_picker_attention_batched(
                qs[s],
                keys[s],
                values[s],
                config,
                score_bias=None if biases is None else biases[s],
                **{k: v[s] for k, v in scales.items()},
            )
            _assert_identical(ragged.results[s], independent)

    def test_long_contexts_past_pairwise_summation_blocks(self):
        """Lengths above numpy's 128-element pairwise-sum block still match."""
        rng = np.random.default_rng(7)
        config = TokenPickerConfig(threshold=2e-3)
        qs, keys, values, _ = _make_batch(rng, 4, 2, 48, 700, with_bias=False)
        ragged = token_picker_attention_ragged(qs, keys, values, config)
        for s in range(4):
            _assert_identical(
                ragged.results[s],
                token_picker_attention_batched(qs[s], keys[s], values[s], config),
            )

    def test_scores_only_mode(self):
        rng = np.random.default_rng(3)
        config = TokenPickerConfig(threshold=2e-3)
        qs, keys, values, _ = _make_batch(rng, 3, 2, 16, 60, with_bias=False)
        ragged = token_picker_attention_ragged(qs, keys, None, config)
        for s in range(3):
            independent = token_picker_attention_batched(
                qs[s], keys[s], None, config
            )
            _assert_identical(ragged.results[s], independent)

    def test_wide_chunk_format(self):
        quant = QuantConfig(total_bits=8, chunk_bits=2)
        config = TokenPickerConfig(threshold=2e-3, quant=quant)
        rng = np.random.default_rng(11)
        qs, keys, values, _ = _make_batch(rng, 3, 2, 8, 70, with_bias=False)
        ragged = token_picker_attention_ragged(qs, keys, values, config)
        for s in range(3):
            _assert_identical(
                ragged.results[s],
                token_picker_attention_batched(qs[s], keys[s], values[s], config),
            )

    def test_pre_encoded_planes_and_values_match_float_path(self):
        """The serving pool's encode-once representation (chunk planes +
        quantize-dequantized V under frozen scales) must reproduce the
        float path bit for bit."""
        from repro.core.quantization import chunk_plane_values

        rng = np.random.default_rng(13)
        config = TokenPickerConfig(threshold=2e-3)
        quant = config.quant
        n_seqs, n_heads, head_dim = 4, 2, 24
        qs, keys, values, _ = _make_batch(
            rng, n_seqs, n_heads, head_dim, 120, with_bias=False
        )
        k_sc = rng.uniform(0.005, 0.05, size=(n_seqs, n_heads))
        q_sc = rng.uniform(0.005, 0.05, size=(n_seqs, n_heads))
        v_sc = rng.uniform(0.005, 0.05, size=(n_seqs, n_heads))
        planes, v_deq = [], []
        for s in range(n_seqs):
            codes = np.clip(
                np.rint(keys[s] / k_sc[s][:, None, None]),
                quant.qmin,
                quant.qmax,
            ).astype(np.int64)
            planes.append(
                chunk_plane_values(codes, quant).transpose(0, 3, 1, 2)
            )
            vsc = v_sc[s][:, None, None]
            v_deq.append(
                np.clip(np.rint(values[s] / vsc), quant.qmin, quant.qmax) * vsc
            )
        encoded = token_picker_attention_ragged(
            qs, None, None, config,
            q_scales=q_sc, k_scales=k_sc, v_scales=v_sc,
            k_planes=planes, v_deq=v_deq,
        )
        floats = token_picker_attention_ragged(
            qs, keys, values, config,
            q_scales=q_sc, k_scales=k_sc, v_scales=v_sc,
        )
        for s in range(n_seqs):
            _assert_identical(encoded.results[s], floats.results[s])

    def test_pre_encoded_planes_wide_format_integer_fallback(self):
        """Formats too wide for exact float64 dot products must take the
        integer fallback and still match the float path bit for bit."""
        from repro.core.quantization import chunk_plane_values

        quant = QuantConfig(total_bits=28, chunk_bits=4)
        config = TokenPickerConfig(threshold=2e-3, quant=quant)
        rng = np.random.default_rng(17)
        n_seqs, n_heads, head_dim = 2, 2, 64
        qs, keys, values, _ = _make_batch(
            rng, n_seqs, n_heads, head_dim, 40, with_bias=False
        )
        k_sc = rng.uniform(1e-8, 2e-8, size=(n_seqs, n_heads))
        q_sc = rng.uniform(1e-8, 2e-8, size=(n_seqs, n_heads))
        planes = []
        for s in range(n_seqs):
            codes = np.clip(
                np.rint(keys[s] / k_sc[s][:, None, None]),
                quant.qmin,
                quant.qmax,
            ).astype(np.int64)
            planes.append(
                chunk_plane_values(codes, quant).transpose(0, 3, 1, 2)
            )
        encoded = token_picker_attention_ragged(
            qs, None, None, config,
            q_scales=q_sc, k_scales=k_sc, k_planes=planes,
        )
        floats = token_picker_attention_ragged(
            qs, keys, None, config, q_scales=q_sc, k_scales=k_sc
        )
        for s in range(n_seqs):
            _assert_identical(encoded.results[s], floats.results[s])

    def test_planes_require_scales(self):
        rng = np.random.default_rng(0)
        config = TokenPickerConfig()
        qs = rng.normal(size=(1, 2, 8))
        planes = [np.zeros((2, config.quant.n_chunks, 5, 8))]
        with pytest.raises(ValueError, match="k_scales"):
            token_picker_attention_ragged(qs, None, None, config, k_planes=planes)
        with pytest.raises(ValueError, match="keys or"):
            token_picker_attention_ragged(qs, None, None, config)

    @pytest.mark.parametrize("backend", ["eager", "numpy"])
    def test_arena_path_matches_batched(self, backend):
        """The zero-copy packed-arena path (token-major digit planes +
        segment table, dead gaps between slabs) must be bit-identical to
        independent batched calls — the serving engine's contract.  The
        lazy backend relaxes only the *pruned* tokens' reported scores
        (certified upper bounds instead of full-depth values)."""
        scores = "exact" if backend == "eager" else "bound"
        for dtype, seed in ((np.float32, 0), (np.float64, 1)):
            rng = np.random.default_rng(seed)
            config = TokenPickerConfig(threshold=2e-3, score_backend=backend)
            n_seqs, n_heads, head_dim = 4, 2, 24
            qs, keys, values, _ = _make_batch(
                rng, n_seqs, n_heads, head_dim, 120, with_bias=False
            )
            q_sc = rng.uniform(0.005, 0.05, size=(n_seqs, n_heads))
            k_sc = rng.uniform(0.005, 0.05, size=(n_seqs, n_heads))
            v_sc = rng.uniform(0.005, 0.05, size=(n_seqs, n_heads))
            k_arena, v_arena, segments = _build_arena(
                keys, values, k_sc, v_sc, config.quant, dtype
            )
            arena = token_picker_attention_ragged(
                qs, None, None, config,
                q_scales=q_sc, k_scales=k_sc,
                k_plane_arena=k_arena, v_arena=v_arena, segments=segments,
                scratch=KernelScratch(),
            )
            for s in range(n_seqs):
                independent = token_picker_attention_batched(
                    qs[s], keys[s], values[s], config,
                    q_scales=q_sc[s], k_scales=k_sc[s], v_scales=v_sc[s],
                )
                _assert_identical(arena.results[s], independent, scores)

    @pytest.mark.parametrize("backend", ["eager", "numpy"])
    def test_arena_scratch_reuse_across_growing_steps(self, backend):
        """Reusing one scratch across calls with growing shapes (the
        engine's decode loop) must not change any result."""
        scores = "exact" if backend == "eager" else "bound"
        rng = np.random.default_rng(7)
        config = TokenPickerConfig(threshold=2e-3, score_backend=backend)
        n_seqs, n_heads, head_dim = 3, 2, 16
        scratch = KernelScratch()
        for step, max_len in enumerate((40, 70, 110)):
            qs, keys, values, _ = _make_batch(
                rng, n_seqs, n_heads, head_dim, max_len, with_bias=False
            )
            q_sc = rng.uniform(0.005, 0.05, size=(n_seqs, n_heads))
            k_sc = rng.uniform(0.005, 0.05, size=(n_seqs, n_heads))
            v_sc = rng.uniform(0.005, 0.05, size=(n_seqs, n_heads))
            k_arena, v_arena, segments = _build_arena(
                keys, values, k_sc, v_sc, config.quant, np.float32
            )
            arena = token_picker_attention_ragged(
                qs, None, None, config,
                q_scales=q_sc, k_scales=k_sc,
                k_plane_arena=k_arena, v_arena=v_arena, segments=segments,
                scratch=scratch,
            )
            for s in range(n_seqs):
                _assert_identical(
                    arena.results[s],
                    token_picker_attention_batched(
                        qs[s], keys[s], values[s], config,
                        q_scales=q_sc[s], k_scales=k_sc[s], v_scales=v_sc[s],
                    ),
                    scores,
                )

    def test_arena_validation(self):
        rng = np.random.default_rng(0)
        config = TokenPickerConfig()
        quant = config.quant
        qs = rng.normal(size=(1, 2, 8))
        arena = np.zeros((32, 2 * quant.n_chunks, 8))
        segs = np.array([[0, 8]], dtype=np.int64)
        with pytest.raises(ValueError, match="k_scales"):
            token_picker_attention_ragged(
                qs, None, None, config, k_plane_arena=arena, segments=segs
            )
        with pytest.raises(ValueError, match="segments"):
            token_picker_attention_ragged(
                qs, None, None, config,
                q_scales=np.ones((1, 2)), k_scales=np.ones((1, 2)),
                k_plane_arena=arena,
            )
        with pytest.raises(ValueError, match="exclusive"):
            token_picker_attention_ragged(
                qs, [rng.normal(size=(2, 8, 8))], None, config,
                k_scales=np.ones((1, 2)),
                k_plane_arena=arena, segments=segs,
            )
        with pytest.raises(ValueError, match="within the arena"):
            token_picker_attention_ragged(
                qs, None, None, config,
                q_scales=np.ones((1, 2)), k_scales=np.ones((1, 2)),
                k_plane_arena=arena,
                segments=np.array([[30, 8]], dtype=np.int64),
            )
        with pytest.raises(ValueError, match="float32"):
            wide = QuantConfig(total_bits=28, chunk_bits=4)
            cfg_wide = TokenPickerConfig(quant=wide)
            token_picker_attention_ragged(
                rng.normal(size=(1, 2, 64)), None, None, cfg_wide,
                q_scales=np.full((1, 2), 1e-8),
                k_scales=np.full((1, 2), 1e-8),
                k_plane_arena=np.zeros(
                    (16, 2 * wide.n_chunks, 64), dtype=np.float32
                ),
                segments=np.array([[0, 8]], dtype=np.int64),
            )

    def test_empty_context_sequences_mix(self):
        rng = np.random.default_rng(5)
        config = TokenPickerConfig(threshold=2e-3)
        h, d = 2, 8
        keys = [
            np.zeros((h, 0, d)),
            rng.normal(size=(h, 20, d)),
            np.zeros((h, 0, d)),
        ]
        values = [np.zeros((h, 0, d)), rng.normal(size=(h, 20, d)), np.zeros((h, 0, d))]
        qs = rng.normal(size=(3, h, d))
        ragged = token_picker_attention_ragged(qs, keys, values, config)
        for s in range(3):
            _assert_identical(
                ragged.results[s],
                token_picker_attention_batched(qs[s], keys[s], values[s], config),
            )
        assert ragged.stats().n_tokens == 2 * 20


class TestExactInFloatBoundary:
    """The pre-encoded score paths pick float64 or int64 accumulation by
    the 52-bit mantissa gate; formats straddling the limit must agree
    bit-for-bit with the always-exact integer float-keys path."""

    FORMATS = [  # (total_bits, chunk_bits, head_dim): gate = 2N-2+bl(d-1)
        (26, 13, 4),    # 52 -> float64 plane path
        (26, 13, 8),    # 53 -> int64 fallback
        (25, 5, 16),    # 52 -> float64 plane path
        (25, 5, 32),    # 53 -> int64 fallback
        (24, 8, 64),    # 52 -> float64 plane path
        (24, 12, 128),  # 53 -> int64 fallback
    ]

    @settings(
        max_examples=24,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 2**31 - 1),
        fmt=st.sampled_from(range(len(FORMATS))),
    )
    def test_plane_paths_straddle_52_bit_limit(self, seed, fmt):
        from repro.core.quantization import chunk_plane_values

        total_bits, chunk_bits, head_dim = self.FORMATS[fmt]
        quant = QuantConfig(total_bits=total_bits, chunk_bits=chunk_bits)
        config = TokenPickerConfig(threshold=2e-3, quant=quant)
        rng = np.random.default_rng(seed)
        n_seqs, n_heads = 2, 2
        qs, keys, _, _ = _make_batch(rng, n_seqs, n_heads, head_dim, 24, False)
        # oracle (saturating) scales stress the most-significant chunks
        k_sc = np.stack(
            [np.abs(k).max(axis=(1, 2)) / quant.qmax for k in keys]
        )
        q_sc = np.abs(qs).max(axis=2) / quant.qmax
        planes = []
        for s in range(n_seqs):
            codes = np.clip(
                np.rint(keys[s] / k_sc[s][:, None, None]),
                quant.qmin,
                quant.qmax,
            ).astype(np.int64)
            planes.append(chunk_plane_values(codes, quant).transpose(0, 3, 1, 2))
        encoded = token_picker_attention_ragged(
            qs, None, None, config,
            q_scales=q_sc, k_scales=k_sc, k_planes=planes,
        )
        arena_k, _, segments = _build_arena(
            keys, [np.zeros_like(k) for k in keys],
            k_sc, np.ones_like(k_sc), quant, np.float64,
        )
        from dataclasses import replace

        via_arena = {}
        for backend in ("eager", "numpy"):
            via_arena[backend] = token_picker_attention_ragged(
                qs, None, None, replace(config, score_backend=backend),
                q_scales=q_sc, k_scales=k_sc,
                k_plane_arena=arena_k, segments=segments,
            )
        floats = token_picker_attention_ragged(
            qs, keys, None, config, q_scales=q_sc, k_scales=k_sc
        )
        for s in range(n_seqs):
            _assert_identical(encoded.results[s], floats.results[s])
            _assert_identical(
                via_arena["eager"].results[s], floats.results[s]
            )
            _assert_identical(
                via_arena["numpy"].results[s], floats.results[s], "bound"
            )


class TestAggregates:
    def test_merged_stats_and_lengths(self):
        rng = np.random.default_rng(0)
        config = TokenPickerConfig(threshold=2e-3)
        qs, keys, values, _ = _make_batch(rng, 5, 2, 16, 90, with_bias=False)
        ragged = token_picker_attention_ragged(qs, keys, values, config)
        assert ragged.n_sequences == 5
        assert np.array_equal(
            ragged.lengths, np.array([k.shape[1] for k in keys])
        )
        merged = ragged.stats()
        assert merged.n_tokens == sum(2 * k.shape[1] for k in keys)
        assert merged.k_chunks_fetched == sum(
            r.stats().k_chunks_fetched for r in ragged.results
        )

    def test_pack_order_longest_first(self):
        rng = np.random.default_rng(1)
        config = TokenPickerConfig(threshold=2e-3)
        qs, keys, values, _ = _make_batch(rng, 6, 2, 8, 64, with_bias=False)
        ragged = token_picker_attention_ragged(qs, keys, values, config)
        packed_lengths = ragged.lengths[ragged.pack_order]
        assert all(
            a >= b for a, b in zip(packed_lengths, packed_lengths[1:])
        )


class TestValidation:
    def test_both_schedules(self):
        """The fused kernels realise the hardware's breadth order only;
        the depth reference stays a per-sequence schedule."""
        rng = np.random.default_rng(0)
        depth = TokenPickerConfig(schedule="depth")
        qs = rng.normal(size=(2, 2, 8))
        keys = [rng.normal(size=(2, 5, 8))] * 2
        with pytest.raises(ValueError, match="breadth"):
            token_picker_attention_ragged(qs, keys, None, depth)
        with pytest.raises(ValueError, match="breadth"):
            token_picker_attention_batched(qs[0], keys[0], None, depth)
        breadth = TokenPickerConfig(schedule="breadth")
        assert token_picker_attention_ragged(qs, keys, None, breadth).n_sequences == 2

    def test_shape_errors(self):
        rng = np.random.default_rng(0)
        config = TokenPickerConfig()
        qs = rng.normal(size=(2, 2, 8))
        good = [rng.normal(size=(2, 5, 8))] * 2
        with pytest.raises(ValueError):
            token_picker_attention_ragged(qs[0], good, None, config)
        with pytest.raises(ValueError):
            token_picker_attention_ragged(qs, good[:1], None, config)
        with pytest.raises(ValueError):
            token_picker_attention_ragged(
                qs, [rng.normal(size=(3, 5, 8))] * 2, None, config
            )
        with pytest.raises(ValueError):
            token_picker_attention_ragged(
                qs, good, [rng.normal(size=(2, 6, 8))] * 2, config
            )
        with pytest.raises(ValueError):
            token_picker_attention_ragged(
                qs, good, None, config, score_bias=[np.zeros((2, 4))] * 2
            )
        with pytest.raises(ValueError):
            token_picker_attention_ragged(
                qs, good, None, config, q_scales=np.zeros((2, 2))
            )
