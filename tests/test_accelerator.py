"""Tests for the ToPick accelerator cycle simulator."""

import numpy as np
import pytest

from repro.core import QuantConfig, TokenPickerConfig, token_picker_scores
from repro.hw import HardwareParams, ToPickAccelerator
from repro.hw.accelerator import VARIANTS
from repro.workloads import sample_workload


@pytest.fixture(scope="module")
def workload():
    return sample_workload(256, n_instances=4, seed=11)


@pytest.fixture(scope="module")
def accelerator():
    return ToPickAccelerator(config=TokenPickerConfig(threshold=1e-3))


@pytest.fixture(scope="module")
def results(accelerator, workload):
    return {v: accelerator.run_workload(workload, variant=v) for v in VARIANTS}


class TestVariants:
    def test_unknown_variant_rejected(self, accelerator, workload):
        with pytest.raises(ValueError):
            accelerator.run_instance(workload[0].q, workload[0].keys, variant="magic")

    def test_mismatched_quant_rejected(self):
        with pytest.raises(ValueError):
            ToPickAccelerator(
                hw=HardwareParams(quant=QuantConfig(total_bits=8, chunk_bits=4)),
                config=TokenPickerConfig(),
            )

    def test_baseline_fetches_everything(self, results):
        b = results["baseline"]
        assert b.k_bytes == b.baseline_k_bytes
        assert b.v_bytes == b.baseline_v_bytes
        assert b.n_kept == b.n_tokens

    def test_v_only_streams_all_k(self, results):
        v = results["v_only"]
        assert v.k_bytes == v.baseline_k_bytes
        assert v.v_bytes < v.baseline_v_bytes

    def test_topick_reduces_both(self, results):
        t = results["topick"]
        assert t.k_bytes < t.baseline_k_bytes
        assert t.v_bytes < t.baseline_v_bytes
        assert t.access_reduction > 1.0

    def test_speedup_ordering_at_paper_context(self):
        """At the paper's context (1024+) topick beats v_only beats baseline.

        The out-of-order design pays a fixed dependency-chain tail
        (~3 x DRAM latency); its K-chunk savings grow with context, so the
        advantage appears at the 1024-2048 contexts the paper evaluates.
        """
        acc = ToPickAccelerator(config=TokenPickerConfig(threshold=1e-3))
        w = sample_workload(1024, n_instances=3, seed=7)
        cycles = {v: acc.run_workload(w, variant=v).cycles for v in VARIANTS}
        assert cycles["topick"] < cycles["v_only"]
        assert cycles["v_only"] < cycles["baseline"]
        assert cycles["topick_inorder"] > cycles["baseline"]

    def test_short_context_crossover(self, results):
        """At short context the latency tail can erase the OoO advantage
        (v_only may be as fast or faster) — but both still beat baseline."""
        assert results["v_only"].cycles < results["baseline"].cycles
        assert results["topick"].cycles < results["baseline"].cycles

    def test_energy_ordering(self, results):
        base = results["baseline"].energy().total
        assert results["topick"].energy().total < results["v_only"].energy().total
        assert results["v_only"].energy().total < base

    def test_empty_instance(self, accelerator):
        r = accelerator.run_instance(np.ones(64), np.zeros((0, 64)), variant="topick")
        assert r.cycles == 0
        assert r.dram_bytes == 0


class TestDecisionFidelity:
    def test_v_only_matches_functional_kept(self, accelerator, workload):
        inst = workload[0]
        hw_r = accelerator.run_instance(inst.q, inst.keys, variant="v_only")
        fn_r = token_picker_scores(inst.q, inst.keys, accelerator.config)
        assert np.array_equal(hw_r.kept, fn_r.kept)

    def test_topick_decisions_safe(self, accelerator, workload):
        """No pruned token exceeds the threshold w.r.t. quantized scores."""
        inst = workload[1]
        r = accelerator.run_instance(inst.q, inst.keys, variant="topick")
        full = token_picker_scores(
            inst.q, inst.keys, accelerator.config.with_threshold(1e-12)
        )
        p = np.exp(full.scores - full.scores.max())
        p /= p.sum()
        assert np.all(p[~r.kept] <= accelerator.config.threshold + 1e-12)

    def test_topick_chunks_bounded(self, accelerator, workload):
        inst = workload[2]
        r = accelerator.run_instance(inst.q, inst.keys, variant="topick")
        q = accelerator.config.quant
        assert np.all(r.chunks_fetched >= 1)
        assert np.all(r.chunks_fetched <= q.n_chunks)
        assert r.k_bytes == int(r.chunks_fetched.sum()) * accelerator.hw.chunk_bytes(
            inst.keys.shape[1]
        )

    def test_inorder_prunes_like_topick_roughly(self, results):
        """Both on-demand variants end with similar keep counts."""
        t, i = results["topick"], results["topick_inorder"]
        assert abs(t.n_kept - i.n_kept) <= 0.25 * max(t.n_kept, i.n_kept)


class TestByteAccounting:
    def test_workload_aggregation(self, accelerator, workload):
        singles = [
            accelerator.run_instance(w.q, w.keys, variant="baseline") for w in workload
        ]
        agg = accelerator.run_workload(workload, variant="baseline")
        assert agg.cycles == sum(s.cycles for s in singles)
        assert agg.dram_bytes == sum(s.dram_bytes for s in singles)
        assert agg.n_instances == len(workload)

    def test_counts_match_bytes(self, results):
        for v in ("baseline", "v_only", "topick"):
            r = results[v]
            assert r.counts.dram_bits == r.dram_bytes * 8
            assert r.counts.sram_bytes == 2 * r.dram_bytes

    def test_reduction_properties(self, results):
        t = results["topick"]
        assert t.v_pruning_ratio >= 1.0
        assert 1.0 <= t.k_reduction <= t.counts.dram_bits  # loose upper bound


class TestScaling:
    def test_cycles_scale_with_context(self, accelerator):
        short = sample_workload(128, n_instances=2, seed=5)
        long = sample_workload(512, n_instances=2, seed=5)
        c_short = accelerator.run_workload(short, variant="topick").cycles
        c_long = accelerator.run_workload(long, variant="topick").cycles
        assert c_long > c_short

    def test_higher_threshold_prunes_more(self, workload):
        lo = ToPickAccelerator(config=TokenPickerConfig(threshold=1e-4))
        hi = ToPickAccelerator(config=TokenPickerConfig(threshold=1e-2))
        r_lo = lo.run_workload(workload, variant="topick")
        r_hi = hi.run_workload(workload, variant="topick")
        assert r_hi.n_kept <= r_lo.n_kept
        assert r_hi.dram_bytes <= r_lo.dram_bytes
