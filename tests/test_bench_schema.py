"""Tests for the shared ``BENCH_*.json`` artifact schema validator."""

import json
from pathlib import Path

import pytest

from repro.eval.bench_schema import (
    REGISTERED_ARTIFACTS,
    BenchSchemaError,
    validate_bench,
    validate_bench_file,
    validate_repo_artifacts,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

VALID = {
    "config": {"threshold": 2e-3, "n_heads": 4},
    "points": [
        {
            "batch_size": 8,
            "fused_tokens_per_sec": 1000.0,
            "phase_ms_per_step": {
                "pack": 0.1, "score": 1.0, "prune": 0.2, "unpack": 0.3,
            },
        }
    ],
}


def _mutated(**overrides):
    record = json.loads(json.dumps(VALID))
    record.update(overrides)
    return record


class TestValidator:
    def test_valid_record_passes(self):
        validate_bench(VALID)

    @pytest.mark.parametrize(
        "record, fragment",
        [
            ({}, "config"),
            (_mutated(config={}), "config"),
            (_mutated(points=[]), "points"),
            (_mutated(points=[{"phase_ms_per_step": {}}]), "tokens_per_sec"),
            (
                _mutated(points=[{"fused_tokens_per_sec": 1.0}]),
                "phase_ms_per_step",
            ),
            (
                _mutated(
                    points=[
                        {
                            "fused_tokens_per_sec": 1.0,
                            "phase_ms_per_step": {
                                "pack": 0.1, "score": 1.0, "prune": 0.2,
                            },
                        }
                    ]
                ),
                "unpack",
            ),
            (
                _mutated(
                    points=[
                        {
                            "fused_tokens_per_sec": 1.0,
                            "phase_ms_per_step": {
                                "pack": -0.1, "score": 1.0, "prune": 0.2,
                                "unpack": 0.3,
                            },
                        }
                    ]
                ),
                "pack",
            ),
        ],
    )
    def test_malformed_records_rejected(self, record, fragment):
        with pytest.raises(BenchSchemaError, match=fragment):
            validate_bench(record)

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "BENCH_broken.json"
        path.write_text("{not json")
        with pytest.raises(BenchSchemaError, match="not valid JSON"):
            validate_bench_file(path)


class TestCommittedArtifacts:
    """CI catches malformed bench output: the committed artifacts must
    always satisfy the shared schema."""

    @pytest.mark.parametrize("name", REGISTERED_ARTIFACTS)
    def test_artifact_validates(self, name):
        path = REPO_ROOT / name
        assert path.exists(), f"{name} missing from the repo root"
        record = validate_bench_file(path)
        assert record["points"]

    def test_kvstore_artifact_registered(self):
        assert "BENCH_kvstore.json" in REGISTERED_ARTIFACTS

    def test_validate_repo_artifacts_covers_registry(self):
        records = validate_repo_artifacts(REPO_ROOT)
        assert set(records) == set(REGISTERED_ARTIFACTS)
