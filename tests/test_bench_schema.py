"""Tests for the shared ``BENCH_*.json`` artifact schema validator."""

import json
from pathlib import Path

import pytest

from repro.eval.bench_schema import (
    REGISTERED_ARTIFACTS,
    BenchSchemaError,
    validate_bench,
    validate_bench_file,
    validate_repo_artifacts,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

VALID = {
    "config": {"threshold": 2e-3, "n_heads": 4},
    "points": [
        {
            "batch_size": 8,
            "fused_tokens_per_sec": 1000.0,
            "phase_ms_per_step": {
                "pack": 0.1, "score": 1.0, "prune": 0.2, "unpack": 0.3,
            },
        }
    ],
}

#: a point satisfying the stricter engine-artifact requirements: the
#: score sub-phase split and the per-round alive-fraction profile
LAZY_POINT = {
    "batch_size": 8,
    "fused_tokens_per_sec": 1000.0,
    "phase_ms_per_step": {
        "pack": 0.1, "score": 1.0, "prune": 0.2, "unpack": 0.3,
        "score_chunk0": 0.6, "score_refine": 0.4,
    },
    "alive_fraction_per_round": [1.0, 0.3, 0.01],
}


#: a valid ``trace_overhead`` section (required in the engine artifact)
TRACE_OVERHEAD = {
    "batch_size": 32,
    "tokens_generated": 512,
    "sample_steps": 8,
    "off_tokens_per_sec": 2000.0,
    "sampled_tokens_per_sec": 1980.0,
    "full_tokens_per_sec": 1950.0,
    "sampled_overhead_pct": 1.0,
    "full_overhead_pct": 2.5,
}

#: a valid ``trace_streaming`` section (required in the engine artifact)
TRACE_STREAMING = {
    "batch_size": 32,
    "tokens_generated": 512,
    "buffered_tokens_per_sec": 1950.0,
    "streamed_tokens_per_sec": 1900.0,
    "streaming_overhead_pct": 2.6,
    "peak_open_spans": 64,
    "events_streamed": 480,
}


def _mutated(**overrides):
    record = json.loads(json.dumps(VALID))
    record.update(overrides)
    return record


def _lazy_point(**overrides):
    point = json.loads(json.dumps(LAZY_POINT))
    point.update(overrides)
    return point


class TestValidator:
    def test_valid_record_passes(self):
        validate_bench(VALID)

    @pytest.mark.parametrize(
        "record, fragment",
        [
            ({}, "config"),
            (_mutated(config={}), "config"),
            (_mutated(points=[]), "points"),
            (_mutated(points=[{"phase_ms_per_step": {}}]), "tokens_per_sec"),
            (
                _mutated(points=[{"fused_tokens_per_sec": 1.0}]),
                "phase_ms_per_step",
            ),
            (
                _mutated(
                    points=[
                        {
                            "fused_tokens_per_sec": 1.0,
                            "phase_ms_per_step": {
                                "pack": 0.1, "score": 1.0, "prune": 0.2,
                            },
                        }
                    ]
                ),
                "unpack",
            ),
            (
                _mutated(
                    points=[
                        {
                            "fused_tokens_per_sec": 1.0,
                            "phase_ms_per_step": {
                                "pack": -0.1, "score": 1.0, "prune": 0.2,
                                "unpack": 0.3,
                            },
                        }
                    ]
                ),
                "pack",
            ),
        ],
    )
    def test_malformed_records_rejected(self, record, fragment):
        with pytest.raises(BenchSchemaError, match=fragment):
            validate_bench(record)

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "BENCH_broken.json"
        path.write_text("{not json")
        with pytest.raises(BenchSchemaError, match="not valid JSON"):
            validate_bench_file(path)


class TestCommittedArtifacts:
    """CI catches malformed bench output: the committed artifacts must
    always satisfy the shared schema."""

    @pytest.mark.parametrize("name", REGISTERED_ARTIFACTS)
    def test_artifact_validates(self, name):
        path = REPO_ROOT / name
        assert path.exists(), f"{name} missing from the repo root"
        record = validate_bench_file(path)
        assert record["points"]

    def test_kvstore_artifact_registered(self):
        assert "BENCH_kvstore.json" in REGISTERED_ARTIFACTS

    def test_validate_repo_artifacts_covers_registry(self):
        records = validate_repo_artifacts(REPO_ROOT)
        assert set(records) == set(REGISTERED_ARTIFACTS)


class TestLongPromptBurstSection:
    VARIANT = {
        "p95_inter_token_ms": 4.0,
        "p95_ttft_ms": 4.0,
        "mean_ttft_ms": 3.0,
    }
    SECTION = {
        "prefill_budget_tokens": 256,
        "unbounded": VARIANT,
        "budgeted": dict(VARIANT, p95_inter_token_ms=3.0),
        "p95_inter_token_improvement": 1.33,
    }

    def test_optional_section_validated_when_present(self):
        validate_bench(_mutated(long_prompt_burst=self.SECTION))

    def test_required_for_engine_artifact(self):
        with pytest.raises(BenchSchemaError, match="long_prompt_burst"):
            validate_bench(
                _mutated(
                    points=[_lazy_point()],
                    trace_overhead=TRACE_OVERHEAD,
                    trace_streaming=TRACE_STREAMING,
                ),
                name="BENCH_engine.json",
            )
        validate_bench(
            _mutated(
                points=[_lazy_point()],
                long_prompt_burst=self.SECTION,
                trace_overhead=TRACE_OVERHEAD,
                trace_streaming=TRACE_STREAMING,
            ),
            name="BENCH_engine.json",
        )

    @pytest.mark.parametrize(
        "patch, fragment",
        [
            ({"prefill_budget_tokens": 0}, "prefill_budget_tokens"),
            ({"unbounded": None}, "unbounded"),
            ({"budgeted": {}}, "p95_inter_token_ms"),
            ({"p95_inter_token_improvement": 0.0}, "improvement"),
            ({"p95_inter_token_improvement": None}, "improvement"),
        ],
    )
    def test_malformed_section_rejected(self, patch, fragment):
        section = json.loads(json.dumps(self.SECTION))
        section.update(patch)
        with pytest.raises(BenchSchemaError, match=fragment):
            validate_bench(_mutated(long_prompt_burst=section))

    def test_committed_engine_artifact_has_the_section(self):
        record = validate_bench_file(REPO_ROOT / "BENCH_engine.json")
        burst = record["long_prompt_burst"]
        assert (
            burst["budgeted"]["p95_inter_token_ms"]
            < burst["unbounded"]["p95_inter_token_ms"]
        ), "committed artifact must show the budgeted improvement"
        assert burst["p95_inter_token_improvement"] > 1.0


class TestLazyDetailSection:
    """Engine-artifact points must carry the lazy kernel's score
    sub-phase split and the per-round alive-fraction profile."""

    def _engine_record(self, point):
        return _mutated(
            points=[point],
            long_prompt_burst=TestLongPromptBurstSection.SECTION,
            trace_overhead=TRACE_OVERHEAD,
            trace_streaming=TRACE_STREAMING,
        )

    def test_plain_point_fine_for_other_artifacts(self):
        validate_bench(_mutated(), name="BENCH_kvstore.json")

    def test_lazy_point_passes_for_engine(self):
        validate_bench(
            self._engine_record(_lazy_point()), name="BENCH_engine.json"
        )

    @pytest.mark.parametrize(
        "point, fragment",
        [
            (
                _lazy_point(
                    phase_ms_per_step={
                        "pack": 0.1, "score": 1.0, "prune": 0.2,
                        "unpack": 0.3, "score_chunk0": 0.6,
                    }
                ),
                "score_refine",
            ),
            (
                {
                    k: v
                    for k, v in _lazy_point().items()
                    if k != "alive_fraction_per_round"
                },
                "alive_fraction_per_round",
            ),
            (_lazy_point(alive_fraction_per_round=[1.0]), "fractions"),
            (
                _lazy_point(alive_fraction_per_round=[0.9, 0.3]),
                r"round 0 must cover every pair",
            ),
            (
                _lazy_point(alive_fraction_per_round=[1.0, 0.3, 0.4]),
                "nonincreasing",
            ),
            (
                _lazy_point(alive_fraction_per_round=[1.0, 1.5]),
                r"in \[0, 1\]",
            ),
        ],
    )
    def test_malformed_lazy_details_rejected(self, point, fragment):
        with pytest.raises(BenchSchemaError, match=fragment):
            validate_bench(
                self._engine_record(point), name="BENCH_engine.json"
            )

    def test_committed_engine_artifact_has_the_profile(self):
        record = validate_bench_file(REPO_ROOT / "BENCH_engine.json")
        for point in record["points"]:
            phases = point["phase_ms_per_step"]
            assert phases["score_chunk0"] + phases["score_refine"] <= (
                phases["score"] + 1e-6
            )
            profile = point["alive_fraction_per_round"]
            assert profile[-1] < 0.5, "pruning must decide most pairs"


class TestTraceOverheadSection:
    """Engine-artifact records must carry the ``trace_overhead``
    section: throughput with tracing off / sampled / full."""

    def test_required_for_engine_artifact(self):
        record = _mutated(
            points=[_lazy_point()],
            long_prompt_burst=TestLongPromptBurstSection.SECTION,
            trace_streaming=TRACE_STREAMING,
        )
        with pytest.raises(BenchSchemaError, match="trace_overhead"):
            validate_bench(record, name="BENCH_engine.json")
        # ...but stays optional (validated-if-present) elsewhere
        validate_bench(record, name="BENCH_kvstore.json")

    @pytest.mark.parametrize(
        "patch, fragment",
        [
            ({"off_tokens_per_sec": None}, "off_tokens_per_sec"),
            ({"sampled_tokens_per_sec": 0}, "sampled_tokens_per_sec"),
            ({"full_tokens_per_sec": -1.0}, "full_tokens_per_sec"),
            ({"sample_steps": 1}, "sample_steps"),
            ({"sample_steps": None}, "sample_steps"),
        ],
    )
    def test_malformed_section_rejected(self, patch, fragment):
        section = json.loads(json.dumps(TRACE_OVERHEAD))
        section.update(patch)
        with pytest.raises(BenchSchemaError, match=fragment):
            validate_bench(_mutated(trace_overhead=section))

    def test_committed_engine_artifact_has_the_section(self):
        record = validate_bench_file(REPO_ROOT / "BENCH_engine.json")
        overhead = record["trace_overhead"]
        assert overhead["sample_steps"] >= 2
        for field in (
            "off_tokens_per_sec",
            "sampled_tokens_per_sec",
            "full_tokens_per_sec",
        ):
            assert overhead[field] > 0


class TestTraceStreamingSection:
    """Engine-artifact records must carry the ``trace_streaming``
    section: buffered vs streamed traced throughput, plus the
    O(open spans) memory evidence (peak open spans << events streamed)."""

    def test_required_for_engine_artifact(self):
        record = _mutated(
            points=[_lazy_point()],
            long_prompt_burst=TestLongPromptBurstSection.SECTION,
            trace_overhead=TRACE_OVERHEAD,
        )
        with pytest.raises(BenchSchemaError, match="trace_streaming"):
            validate_bench(record, name="BENCH_engine.json")
        # ...but stays optional (validated-if-present) elsewhere
        validate_bench(record, name="BENCH_kvstore.json")

    @pytest.mark.parametrize(
        "patch, fragment",
        [
            ({"buffered_tokens_per_sec": None}, "buffered_tokens_per_sec"),
            ({"streamed_tokens_per_sec": 0}, "streamed_tokens_per_sec"),
            ({"peak_open_spans": 0}, "peak_open_spans"),
            ({"peak_open_spans": 2.5}, "peak_open_spans"),
            ({"events_streamed": None}, "events_streamed"),
            # the memory claim: streamed events must dwarf the peak
            ({"events_streamed": 64}, "events_streamed"),
        ],
    )
    def test_malformed_section_rejected(self, patch, fragment):
        section = json.loads(json.dumps(TRACE_STREAMING))
        section.update(patch)
        with pytest.raises(BenchSchemaError, match=fragment):
            validate_bench(_mutated(trace_streaming=section))

    def test_committed_engine_artifact_has_the_section(self):
        record = validate_bench_file(REPO_ROOT / "BENCH_engine.json")
        streaming = record["trace_streaming"]
        assert streaming["buffered_tokens_per_sec"] > 0
        assert streaming["streamed_tokens_per_sec"] > 0
        assert streaming["events_streamed"] > streaming["peak_open_spans"]


class TestRobustnessSections:
    """Cluster-artifact records must carry the ``overload_goodput`` and
    ``fault_recovery`` sections, with their blocking acceptance fields
    (goodput not losing to FIFO; bit-identical fault recovery)."""

    GOODPUT = {
        "slo_p95_inter_token_ms": 2.5,
        "slo_ttft_ms": 400.0,
        "fifo": {"completed": 48, "goodput": 12, "shed": 0},
        "slo_aware": {"completed": 48, "goodput": 24, "shed": 0},
        "goodput_improvement": 2.0,
        "max_degrade_level": 3,
        "degradation_timeline": [
            {"step": 4, "p95_ms": 2.7, "level": 1, "shedding": False},
        ],
    }
    RECOVERY = {
        "replicas": 3,
        "kills": 2,
        "revives": 2,
        "retries": 12,
        "swap_resumes": 0,
        "re_prefills": 3,
        "requeues": 9,
        "completed": 18,
        "bit_identical": True,
        "recovery_ttft_p95_ms": 290.0,
    }

    SHARD_SCALING = {
        "model": "gpt2-medium",
        "n_heads": 4,
        "head_dim": 64,
        "batch": 8,
        "runs": [
            {
                "shards": 1,
                "modelled_tokens_per_sec": 2595.6,
                "allgather_bytes_per_token": 0.0,
                "baseline_allgather_bytes_per_token": 0.0,
            },
            {
                "shards": 2,
                "modelled_tokens_per_sec": 2723.0,
                "allgather_bytes_per_token": 38208.3,
                "baseline_allgather_bytes_per_token": 4156416.0,
            },
            {
                "shards": 4,
                "modelled_tokens_per_sec": 2796.3,
                "allgather_bytes_per_token": 38208.3,
                "baseline_allgather_bytes_per_token": 4156416.0,
            },
        ],
    }

    def _cluster_record(self, **overrides):
        record = _mutated(
            overload_goodput=json.loads(json.dumps(self.GOODPUT)),
            fault_recovery=json.loads(json.dumps(self.RECOVERY)),
            shard_scaling=json.loads(json.dumps(self.SHARD_SCALING)),
        )
        record.update(overrides)
        return record

    def test_valid_cluster_record_passes(self):
        validate_bench(self._cluster_record(), name="BENCH_cluster.json")

    @pytest.mark.parametrize(
        "section", ["overload_goodput", "fault_recovery", "shard_scaling"]
    )
    def test_sections_required_for_cluster_artifact(self, section):
        record = self._cluster_record()
        del record[section]
        with pytest.raises(BenchSchemaError, match=section):
            validate_bench(record, name="BENCH_cluster.json")
        # ...but stay optional (validated-if-present) elsewhere
        validate_bench(record, name="BENCH_kvstore.json")

    @pytest.mark.parametrize(
        "patch, fragment",
        [
            ({"slo_p95_inter_token_ms": 0}, "slo_p95_inter_token_ms"),
            ({"fifo": None}, "fifo"),
            ({"slo_aware": {"completed": 48, "goodput": -1, "shed": 0}},
             "goodput"),
            ({"goodput_improvement": 0.9}, "must not lose to FIFO"),
            ({"degradation_timeline": []}, "non-empty"),
            ({"degradation_timeline": [{"step": 4, "p95_ms": 2.7,
                                        "level": -1, "shedding": False}]},
             "level"),
        ],
    )
    def test_malformed_goodput_rejected(self, patch, fragment):
        record = self._cluster_record()
        record["overload_goodput"].update(patch)
        with pytest.raises(BenchSchemaError, match=fragment):
            validate_bench(record, name="BENCH_cluster.json")

    @pytest.mark.parametrize(
        "patch, fragment",
        [
            ({"kills": 1}, "kill >= 2"),
            ({"replicas": 1}, "replicas"),
            ({"completed": 0}, "completed"),
            ({"bit_identical": False}, "bit-identical"),
            ({"retries": -1}, "retries"),
            ({"recovery_ttft_p95_ms": None}, "recovery_ttft_p95_ms"),
        ],
    )
    def test_malformed_recovery_rejected(self, patch, fragment):
        record = self._cluster_record()
        record["fault_recovery"].update(patch)
        with pytest.raises(BenchSchemaError, match=fragment):
            validate_bench(record, name="BENCH_cluster.json")

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            # anchor run must ship nothing
            (lambda s: s["runs"][0].update(allgather_bytes_per_token=8.0),
             "nothing to gather"),
            # pruning must beat the no-pruning baseline on the wire
            (lambda s: s["runs"][1].update(
                allgather_bytes_per_token=4156416.0),
             "pruning must shrink the all-gather"),
            (lambda s: s["runs"][1].update(modelled_tokens_per_sec=0),
             "modelled_tokens_per_sec"),
            (lambda s: s["runs"].pop(0), "shards=1 anchor"),
            (lambda s: s["runs"].append(dict(s["runs"][1])),
             "duplicate shard widths"),
            (lambda s: s.update(runs=[]), "list of >= 2 runs"),
        ],
    )
    def test_malformed_shard_scaling_rejected(self, mutate, fragment):
        record = self._cluster_record()
        mutate(record["shard_scaling"])
        with pytest.raises(BenchSchemaError, match=fragment):
            validate_bench(record, name="BENCH_cluster.json")

    def test_committed_cluster_artifact_has_the_sections(self):
        record = validate_bench_file(REPO_ROOT / "BENCH_cluster.json")
        goodput = record["overload_goodput"]
        assert goodput["goodput_improvement"] >= 1.0
        assert goodput["max_degrade_level"] >= 1
        recovery = record["fault_recovery"]
        assert recovery["kills"] >= 2
        assert recovery["bit_identical"] is True
        assert recovery["completed"] == recovery["requests"]
        scaling = record["shard_scaling"]
        widths = {run["shards"] for run in scaling["runs"]}
        assert {1, 2, 4} <= widths
        for run in scaling["runs"]:
            if run["shards"] > 1:
                assert run["interconnect_savings"] > 1.0
