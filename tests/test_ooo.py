"""Tests for the out-of-order score-calculation engine (Sec. 3.2)."""

import numpy as np
import pytest

from repro.core import TokenPickerConfig, token_picker_scores
from repro.core.ooo import OoOConfig, OutOfOrderEngine


def _instance(seed, t=128, d=32, sharpness=2.0):
    rng = np.random.default_rng(seed)
    keys = rng.normal(size=(t, d))
    q = keys[rng.choice(t, 4, replace=False)].sum(axis=0) * sharpness / 2
    return q, keys


class TestOoOConfigValidation:
    def test_bad_latency(self):
        with pytest.raises(ValueError):
            OoOConfig(dram_latency=0)

    def test_bad_rates(self):
        with pytest.raises(ValueError):
            OoOConfig(requests_per_cycle=0)
        with pytest.raises(ValueError):
            OoOConfig(process_per_cycle=0)

    def test_bad_scoreboard(self):
        with pytest.raises(ValueError):
            OoOConfig(scoreboard_entries=0)


class TestInOrderEquivalence:
    """Blocking pipeline must reproduce the depth-first schedule exactly."""

    @pytest.mark.parametrize("seed", range(4))
    def test_decisions_match_depth_first(self, seed):
        q, keys = _instance(seed)
        cfg = TokenPickerConfig(threshold=1e-3, schedule="depth")
        functional = token_picker_scores(q, keys, cfg)
        engine = OutOfOrderEngine(cfg, OoOConfig(dram_latency=20, in_order=True))
        hw = engine.run(q, keys)
        assert np.array_equal(hw.kept, functional.kept)
        assert np.array_equal(hw.chunks_fetched, functional.chunks_fetched)


class TestSafety:
    @pytest.mark.parametrize("in_order", [False, True])
    @pytest.mark.parametrize("latency", [1, 8, 40])
    def test_no_dominant_token_pruned(self, in_order, latency):
        q, keys = _instance(7)
        cfg = TokenPickerConfig(threshold=1e-3)
        engine = OutOfOrderEngine(cfg, OoOConfig(dram_latency=latency, in_order=in_order))
        res = engine.run(q, keys)
        # probabilities of the quantized scores
        full = token_picker_scores(q, keys, TokenPickerConfig(threshold=1e-12))
        s = full.scores
        p = np.exp(s - s.max())
        p /= p.sum()
        assert np.all(p[~res.kept] <= cfg.threshold + 1e-12)


class TestTiming:
    def test_ooo_much_faster_than_in_order(self):
        q, keys = _instance(3, t=256)
        cfg = TokenPickerConfig(threshold=1e-3)
        lat = 40
        ooo = OutOfOrderEngine(cfg, OoOConfig(dram_latency=lat)).run(q, keys)
        ino = OutOfOrderEngine(cfg, OoOConfig(dram_latency=lat, in_order=True)).run(q, keys)
        assert ooo.cycles < ino.cycles / 4
        assert ooo.utilization > ino.utilization

    def test_utilization_approaches_one_for_long_sequences(self):
        q, keys = _instance(4, t=512)
        cfg = TokenPickerConfig(threshold=1e-4)
        res = OutOfOrderEngine(cfg, OoOConfig(dram_latency=20)).run(q, keys)
        assert res.utilization > 0.5

    def test_latency_one_is_near_ideal(self):
        q, keys = _instance(5, t=128)
        cfg = TokenPickerConfig(threshold=1e-3)
        res = OutOfOrderEngine(cfg, OoOConfig(dram_latency=1)).run(q, keys)
        # with unit latency every cycle can retire one chunk
        assert res.cycles <= res.stats.k_chunks_fetched + 8

    def test_scoreboard_limits_occupancy(self):
        q, keys = _instance(6, t=256)
        cfg = TokenPickerConfig(threshold=1e-3)
        for entries in (4, 32):
            res = OutOfOrderEngine(
                cfg, OoOConfig(dram_latency=40, scoreboard_entries=entries)
            ).run(q, keys)
            assert res.max_scoreboard_occupancy <= entries

    def test_small_scoreboard_slows_execution(self):
        q, keys = _instance(8, t=256)
        cfg = TokenPickerConfig(threshold=1e-3)
        small = OutOfOrderEngine(
            cfg, OoOConfig(dram_latency=40, scoreboard_entries=2)
        ).run(q, keys)
        big = OutOfOrderEngine(
            cfg, OoOConfig(dram_latency=40, scoreboard_entries=64)
        ).run(q, keys)
        assert big.cycles <= small.cycles


class TestEdgeCases:
    def test_empty_sequence(self):
        engine = OutOfOrderEngine(TokenPickerConfig(), OoOConfig())
        res = engine.run(np.ones(8), np.zeros((0, 8)))
        assert res.cycles == 0
        assert res.stats.n_tokens == 0

    def test_single_token(self):
        rng = np.random.default_rng(0)
        engine = OutOfOrderEngine(TokenPickerConfig(), OoOConfig(dram_latency=5))
        res = engine.run(rng.normal(size=8), rng.normal(size=(1, 8)))
        assert res.kept.tolist() == [True]
        assert res.stats.k_chunks_fetched == 3

    def test_requests_accounting(self):
        q, keys = _instance(9)
        res = OutOfOrderEngine(TokenPickerConfig(), OoOConfig()).run(q, keys)
        assert res.requests_issued == res.stats.k_chunks_fetched
