"""Tests for the bank-level DRAM model."""

import numpy as np
import pytest

from repro.hw.dram_banks import (
    AccessStats,
    BankTimings,
    BankedChannel,
    BankedHBM2,
    measure_access_pattern_cost,
)


class TestBankTimings:
    def test_defaults_positive(self):
        t = BankTimings()
        assert t.t_cas > 0 and t.t_rcd > 0 and t.t_rp > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            BankTimings(t_cas=-1)
        with pytest.raises(ValueError):
            BankTimings(t_burst_per_32b=0)


class TestBankedChannel:
    def test_first_access_is_miss(self):
        ch = BankedChannel()
        ch.access(0, 32, 0.0)
        assert ch.stats.misses == 1 and ch.stats.hits == 0

    def test_same_row_hits(self):
        ch = BankedChannel(row_bytes=1024)
        ch.access(0, 32, 0.0)
        ch.access(64, 32, 10.0)  # same row
        assert ch.stats.hits == 1

    def test_row_conflict(self):
        ch = BankedChannel(n_banks=2, row_bytes=1024)
        ch.access(0, 32, 0.0)  # bank 0, row 0
        ch.access(2 * 1024, 32, 10.0)  # bank 0, row 1 -> conflict
        assert ch.stats.conflicts == 1

    def test_conflict_slower_than_hit(self):
        t = BankTimings()
        ch = BankedChannel(n_banks=2, row_bytes=1024, timings=t)
        ch.access(0, 32, 0.0)
        hit_time = ch.access(64, 32, 100.0) - 100.0
        conflict_time = ch.access(2 * 1024, 32, 200.0) - 200.0
        assert conflict_time > hit_time
        assert conflict_time - hit_time == pytest.approx(t.t_rp + t.t_rcd)

    def test_bank_serialisation(self):
        ch = BankedChannel(n_banks=2, row_bytes=1024)
        r1 = ch.access(0, 1024, 0.0)
        r2 = ch.access(64, 32, 0.0)  # same bank: queues behind r1
        assert r2 > r1

    def test_different_banks_parallel(self):
        ch = BankedChannel(n_banks=4, row_bytes=1024)
        r1 = ch.access(0, 32, 0.0)  # bank 0
        r2 = ch.access(1024, 32, 0.0)  # bank 1
        assert r2 == pytest.approx(r1)  # no queueing across banks

    def test_address_validation(self):
        ch = BankedChannel()
        with pytest.raises(ValueError):
            ch.access(-1, 32, 0.0)
        with pytest.raises(ValueError):
            ch.access(0, 0, 0.0)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BankedChannel(n_banks=0)


class TestBankedHBM2:
    def test_tokens_interleave_channels(self):
        hbm = BankedHBM2(n_channels=8)
        channels = {hbm.token_address(t, 0, 32)[0] for t in range(8)}
        assert channels == set(range(8))

    def test_chunks_contiguous_per_token(self):
        hbm = BankedHBM2()
        ch0, a0 = hbm.token_address(5, 0, 32)
        ch1, a1 = hbm.token_address(5, 1, 32)
        assert ch0 == ch1
        assert a1 - a0 == 32

    def test_stats_merge(self):
        hbm = BankedHBM2(n_channels=2)
        hbm.read_chunk(0, 0, 32, 0.0)
        hbm.read_chunk(1, 0, 32, 0.0)
        assert hbm.stats.total == 2
        assert hbm.total_bytes == 64

    def test_validation(self):
        with pytest.raises(ValueError):
            BankedHBM2(n_channels=0)


class TestAccessPatternCost:
    def test_sequential_beats_scattered(self):
        """Streaming consecutive tokens row-hits; scattered survivors don't."""
        sequential = [(t, 0) for t in range(512)]
        rng = np.random.default_rng(0)
        scattered = [(int(t), 2) for t in rng.choice(4096, size=512, replace=False)]
        seq = measure_access_pattern_cost(sequential)
        sca = measure_access_pattern_cost(scattered)
        assert seq["hit_rate"] > sca["hit_rate"]
        assert seq["completion_time"] <= sca["completion_time"]

    def test_request_count(self):
        out = measure_access_pattern_cost([(0, 0), (1, 0), (2, 0)])
        assert out["requests"] == 3

    def test_hit_rate_range(self):
        out = measure_access_pattern_cost([(t, 0) for t in range(100)])
        assert 0.0 <= out["hit_rate"] <= 1.0
