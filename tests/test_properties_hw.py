"""Property-based tests for the hardware-side invariants."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TokenPickerConfig
from repro.core.ooo import OoOConfig, OutOfOrderEngine
from repro.hw.dram import DRAMRequest, HBM2Model
from repro.hw.fixedpoint import ConservativeExpUnit
from repro.hw.pe_lane import DAGUnit, PartialExpCalculator


class TestDRAMProperties:
    @given(
        sizes=st.lists(st.integers(1, 4096), min_size=1, max_size=40),
        channels=st.integers(1, 8),
        latency=st.integers(0, 50),
    )
    @settings(max_examples=60, deadline=None)
    def test_conservation_and_ordering(self, sizes, channels, latency):
        """Bytes are conserved; per-channel completions are FIFO; every
        request completes no earlier than issue + latency."""
        m = HBM2Model(n_channels=channels, latency_cycles=latency)
        last_ready = {}
        for i, n in enumerate(sizes):
            ch = i % channels
            ready = m.submit(DRAMRequest(channel=ch, n_bytes=n, issue_cycle=i))
            assert ready >= i + latency
            if ch in last_ready:
                assert ready >= last_ready[ch]
            last_ready[ch] = ready
        assert m.total_bytes == sum(sizes)
        assert m.requests_served == len(sizes)

    @given(sizes=st.lists(st.integers(1, 512), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_utilisation_bounded(self, sizes):
        m = HBM2Model(n_channels=2, latency_cycles=4)
        for i, n in enumerate(sizes):
            m.submit(DRAMRequest(channel=i % 2, n_bytes=n, issue_cycle=0))
        drain = m.drain_cycle()
        assert 0.0 <= m.utilisation(drain) <= 1.0 + 1e-9


class TestDAGEquivalence:
    @given(terms=st.lists(st.floats(-30, 30), min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_dag_matches_logsumexp(self, terms):
        """Aggregating exp-deltas reproduces logsumexp exactly (float mode)."""
        dag = DAGUnit()
        pec = PartialExpCalculator()
        for t in terms:
            _, delta = pec.delta(t, 0.0)
            dag.aggregate(delta)
        assert np.isclose(dag.ln_denominator, np.logaddexp.reduce(np.array(terms)),
                          atol=1e-9)

    @given(terms=st.lists(st.floats(-20, 20), min_size=1, max_size=25))
    @settings(max_examples=40)
    def test_fixed_point_dag_lower_bounds_float(self, terms):
        unit = ConservativeExpUnit()
        dag_f, dag_x = DAGUnit(), DAGUnit(unit)
        for t in terms:
            dag_f.aggregate(math.exp(t))
            dag_x.aggregate(unit.exp_lower(t))
        assert dag_x.ln_denominator <= dag_f.ln_denominator + 1e-12


class TestOoOProperties:
    @given(
        seed=st.integers(0, 2000),
        latency=st.integers(1, 30),
        entries=st.integers(1, 32),
        t=st.integers(2, 32),
    )
    @settings(max_examples=30, deadline=None)
    def test_engine_invariants(self, seed, latency, entries, t):
        """For any latency/scoreboard size: terminates, respects capacity,
        accounts requests exactly, and keeps at least the guard token."""
        rng = np.random.default_rng(seed)
        keys = rng.normal(size=(t, 8))
        q = keys[rng.integers(t)] + 0.3 * rng.normal(size=8)
        engine = OutOfOrderEngine(
            TokenPickerConfig(threshold=1e-2),
            OoOConfig(dram_latency=latency, scoreboard_entries=entries),
        )
        r = engine.run(q, keys)
        assert r.max_scoreboard_occupancy <= entries
        assert r.requests_issued == int(r.chunks_fetched.sum())
        assert r.kept[-1]  # prompt_guard default 1
        assert r.busy_cycles <= r.cycles
