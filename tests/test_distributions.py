"""Tests for distribution analyses (Figs. 3 and 4a) and workload generators."""

import numpy as np
import pytest

from repro.eval.distributions import (
    attention_locality_profile,
    instance_variability,
    locality_summary,
    score_histogram,
)
from repro.model import TinyGPT, tiny_config
from repro.workloads import (
    HEAD_ARCHETYPES,
    InstanceParams,
    fig3_instances,
    sample_workload,
    synthetic_instance,
)


class TestSyntheticInstances:
    def test_shapes(self):
        inst = synthetic_instance(InstanceParams(context_length=128, head_dim=32))
        assert inst.q.shape == (32,)
        assert inst.keys.shape == (128, 32)
        assert inst.values.shape == (128, 32)
        assert inst.context_length == 128

    def test_deterministic(self):
        p = InstanceParams(context_length=64)
        a = synthetic_instance(p, seed=5)
        b = synthetic_instance(p, seed=5)
        assert np.allclose(a.q, b.q) and np.allclose(a.keys, b.keys)

    def test_spread_controls_dominance(self):
        wide = synthetic_instance(
            InstanceParams(context_length=512, spread=2.5), seed=1
        )
        narrow = synthetic_instance(
            InstanceParams(context_length=512, spread=0.7), seed=1
        )
        assert wide.dominant_count() < narrow.dominant_count()

    def test_probs_normalised(self):
        inst = synthetic_instance(InstanceParams(context_length=64), seed=2)
        assert np.isclose(inst.exact_probs().sum(), 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            InstanceParams(context_length=0)
        with pytest.raises(ValueError):
            InstanceParams(spread=0.0)
        with pytest.raises(ValueError):
            InstanceParams(n_dominant=-1)


class TestFig3Instances:
    def test_contrast(self):
        a, b = fig3_instances(seed=0)
        fa = a.dominant_count() / 1024
        fb = b.dominant_count() / 1024
        # paper: 4.6% vs 23.5%
        assert fa < 0.10
        assert fb > 0.15

    def test_histogram(self):
        a, _ = fig3_instances(seed=0)
        h = score_histogram(a, n_bins=30)
        assert h.counts.sum() == 1024
        assert h.score_std > 0
        assert h.dominant_tokens == a.dominant_count()

    def test_histogram_validation(self):
        a, _ = fig3_instances(seed=0)
        with pytest.raises(ValueError):
            score_histogram(a, n_bins=0)


class TestWorkloadSampling:
    def test_count_and_variety(self):
        insts = sample_workload(256, n_instances=10, seed=0)
        assert len(insts) == 10
        fractions = instance_variability(insts)
        assert fractions[0] < fractions[-1]  # genuine spread

    def test_archetypes_cover_locality_range(self):
        decays = [a.recency_decay for a in HEAD_ARCHETYPES]
        assert max(decays) > 5 * min(decays)

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_workload(128, n_instances=0)


class TestLocalityProfile:
    @pytest.fixture(scope="class")
    def model(self):
        cfg = tiny_config(
            name="loc", n_layers=1, d_model=32, n_heads=2, vocab_size=16,
            max_context=96,
        )
        return TinyGPT(cfg, seed=1)

    def test_profile_shape_and_normalisation(self, model):
        tokens = np.random.default_rng(0).integers(0, 16, size=96)
        profile = attention_locality_profile(model, tokens, n_recent=10,
                                             min_context=32)
        assert profile.shape == (2, 12)
        # each row is an average probability distribution split: sums ~1
        assert np.allclose(profile.sum(axis=1), 1.0, atol=0.02)

    def test_alibi_model_is_recency_weighted(self, model):
        """Untrained ALiBi models already show the Fig. 4(a) pattern."""
        tokens = np.random.default_rng(1).integers(0, 16, size=96)
        profile = attention_locality_profile(model, tokens, min_context=32)
        summary = locality_summary(profile)
        # recent tokens carry far more than their uniform share
        assert summary["mean_recent_mass"] > 10 / 64
        assert summary["max_current_token_mass"] > 0.05

    def test_short_sequence_rejected(self, model):
        with pytest.raises(ValueError):
            attention_locality_profile(model, np.zeros(10, dtype=int),
                                       min_context=32)
