"""Trace-diff analyzer: summaries, thresholds, and the CI gate contract.

The gate's promise: a deliberately injected slowdown — more modelled
cycles per step, inflated wall phases, drifted alive fractions — is
detected and exits non-zero, while re-diffing a run against itself (or
against per-run wall noise within thresholds) passes.
"""

import json

import numpy as np
import pytest

from repro.core import TokenPickerConfig
from repro.hw.serving import ServingSimulator
from repro.model.config import get_model_config
from repro.obs import Tracer
from repro.obs.diff import (
    DiffThresholds,
    diff_summaries,
    load_summary,
    main,
    trace_summary,
)
from repro.serving import ServingEngine, synthetic_request

CFG = TokenPickerConfig(threshold=2e-3)


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """One small traced run with the dual-clock track, written once."""
    tracer = Tracer()
    sim = ServingSimulator(
        get_model_config("gpt2-medium"), context_length=64, config=CFG
    )
    engine = ServingEngine(
        CFG,
        max_batch_size=4,
        capacity_tokens=4096,
        seed=0,
        tracer=tracer,
        cycle_sim=sim,
    )
    rng = np.random.default_rng(0)
    for _ in range(6):
        engine.submit(synthetic_request(rng, 2, 32, 16, 4))
    engine.run_until_drained()
    path = tmp_path_factory.mktemp("diff") / "run.jsonl"
    tracer.write_span_log(path)
    return path


def test_trace_summary_shape(trace_path):
    summary = trace_summary(trace_path)
    assert summary["trace_diff_schema"] == 1
    assert summary["steps"] > 0
    assert summary["tokens"] == 24
    assert summary["requests_finished"] == 6
    assert summary["tokens_per_sec"] > 0
    assert summary["wall_ms_per_step"]["step"] > 0
    cycles = summary["cycles_per_step"]
    assert cycles["total"] > 0
    assert cycles["total"] == pytest.approx(
        cycles["weights"] + cycles["attention"] + cycles["prefill"]
    )
    alive = summary["alive_fraction"]
    assert alive[0] == 1.0 and alive == sorted(alive, reverse=True)
    assert summary["unterminated_spans"] == 0


def test_self_diff_is_clean(trace_path):
    summary = trace_summary(trace_path)
    assert diff_summaries(summary, summary) == []


def test_detects_injected_slowdown(trace_path):
    """Scale the candidate's deterministic metrics the way a real
    regression would move them; every scaled axis must be flagged."""
    baseline = trace_summary(trace_path)
    slowed = json.loads(json.dumps(baseline))
    slowed["cycles_per_step"] = {
        k: v * 1.25 for k, v in slowed["cycles_per_step"].items()
    }
    slowed["wall_ms_per_step"] = {
        k: v * 3.0 for k, v in slowed["wall_ms_per_step"].items()
    }
    slowed["tokens_per_sec"] /= 3.0
    slowed["alive_fraction"] = [
        min(1.0, f + 0.1) for f in slowed["alive_fraction"]
    ]

    regressions = diff_summaries(baseline, slowed)
    metrics = {r.metric for r in regressions}
    assert "cycles_per_step.total" in metrics
    assert "wall_ms_per_step.step" in metrics
    assert "tokens_per_sec" in metrics
    assert any(m.startswith("alive_fraction[") for m in metrics)
    for regression in regressions:
        assert "REGRESSION" in regression.format()


def test_improvements_never_gate(trace_path):
    baseline = trace_summary(trace_path)
    faster = json.loads(json.dumps(baseline))
    faster["cycles_per_step"] = {
        k: v * 0.5 for k, v in faster["cycles_per_step"].items()
    }
    faster["tokens_per_sec"] *= 2.0
    assert diff_summaries(baseline, faster) == []


def test_thresholds_are_respected(trace_path):
    baseline = trace_summary(trace_path)
    nudged = json.loads(json.dumps(baseline))
    nudged["cycles_per_step"] = {
        k: v * 1.04 for k, v in nudged["cycles_per_step"].items()
    }
    # default cycles_pct=5 tolerates a 4% drift...
    assert diff_summaries(baseline, nudged) == []
    # ...a tightened gate does not
    tight = DiffThresholds(cycles_pct=1.0)
    flagged = diff_summaries(baseline, nudged, tight)
    assert any(r.metric.startswith("cycles_per_step") for r in flagged)


def test_missing_metrics_are_skipped(trace_path):
    """A baseline without a cycle track cannot gate cycles (and vice
    versa) — partial summaries diff on their intersection only."""
    baseline = trace_summary(trace_path)
    bare = {
        k: v for k, v in baseline.items() if k != "cycles_per_step"
    }
    slowed = json.loads(json.dumps(baseline))
    slowed["cycles_per_step"] = {
        k: v * 10 for k, v in slowed["cycles_per_step"].items()
    }
    assert diff_summaries(bare, slowed) == []


def test_main_write_baseline_then_gate(trace_path, tmp_path, capsys):
    """The CLI contract CI scripts rely on: --write-baseline exits 0 and
    writes a loadable summary; diffing the trace against it exits 0;
    diffing against a corrupted (slowed) baseline copy exits 1."""
    baseline_path = tmp_path / "baseline.json"
    assert main([str(trace_path), "--write-baseline", str(baseline_path)]) == 0
    loaded = load_summary(baseline_path)
    assert loaded == trace_summary(trace_path)

    assert main([str(baseline_path), str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "no regression beyond thresholds" in out

    slowed = json.loads(baseline_path.read_text())
    # halve the *baseline's* cycles: the real trace now reads 2x slower
    slowed["cycles_per_step"] = {
        k: v / 2 for k, v in slowed["cycles_per_step"].items()
    }
    slowed_path = tmp_path / "slowed_baseline.json"
    slowed_path.write_text(json.dumps(slowed))
    assert main([str(slowed_path), str(trace_path)]) == 1
    assert "REGRESSION cycles_per_step" in capsys.readouterr().out


def test_main_requires_candidate(trace_path, capsys):
    with pytest.raises(SystemExit):
        main([str(trace_path)])
