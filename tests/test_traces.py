"""Tests for attention-trace harvesting from the LM."""

import numpy as np
import pytest

from repro.core import TokenPickerConfig, token_picker_scores
from repro.model import TinyGPT, tiny_config
from repro.workloads.traces import (
    TraceSpec,
    harvest_instances,
    harvest_with_bias,
    harvested_dominance_profile,
)


@pytest.fixture(scope="module")
def model():
    return TinyGPT(
        tiny_config(name="trace", n_layers=2, d_model=32, n_heads=2,
                    vocab_size=16, max_context=96),
        seed=5,
    )


@pytest.fixture(scope="module")
def tokens():
    return np.random.default_rng(0).integers(0, 16, size=80)


class TestHarvest:
    def test_counts_and_shapes(self, model, tokens):
        spec = TraceSpec(positions=[40, 70])
        instances = harvest_instances(model, tokens, spec)
        # layers x heads x positions
        assert len(instances) == 2 * 2 * 2
        assert instances[0].q.shape == (16,)
        assert instances[0].keys.shape == (41, 16)
        assert instances[1].keys.shape == (71, 16)

    def test_layer_head_selection(self, model, tokens):
        spec = TraceSpec(positions=[40], layers=[1], heads=[0])
        instances = harvest_instances(model, tokens, spec)
        assert len(instances) == 1

    def test_position_validation(self, model, tokens):
        with pytest.raises(ValueError):
            harvest_instances(model, tokens, TraceSpec(positions=[0]))
        with pytest.raises(ValueError):
            harvest_instances(model, tokens, TraceSpec(positions=[500]))
        with pytest.raises(ValueError):
            harvest_instances(model, tokens[None, :], TraceSpec(positions=[4]))

    def test_instances_match_model_attention(self, model, tokens):
        """The harvested (q, K) reproduce the model's own probabilities."""
        spec = TraceSpec(positions=[60], layers=[0], heads=[1])
        (inst, bias), = harvest_with_bias(model, tokens, spec)
        scores = inst.keys @ inst.q / np.sqrt(16)
        if bias is not None:
            scores = scores + bias
        probs = np.exp(scores - scores.max())
        probs /= probs.sum()
        _, cache = model.forward(np.asarray(tokens)[None, :])
        model_probs = cache[1][0][5][0][1, 60, :61]
        assert np.allclose(probs, model_probs, atol=1e-10)

    def test_bias_present_for_alibi(self, model, tokens):
        pairs = harvest_with_bias(model, tokens, TraceSpec(positions=[30]))
        for inst, bias in pairs:
            assert bias is not None
            assert bias.shape == (31,)
            assert bias[-1] == 0.0  # newest token: zero distance

    def test_harvested_instances_prune_safely(self, model, tokens):
        pairs = harvest_with_bias(model, tokens, TraceSpec(positions=[70]))
        cfg = TokenPickerConfig(threshold=5e-3)
        for inst, bias in pairs:
            r = token_picker_scores(inst.q, inst.keys, cfg, score_bias=bias)
            p = np.exp(r.scores - r.scores.max())
            p /= p.sum()
            assert np.all(p[~r.kept] <= cfg.threshold + 1e-9)

    def test_dominance_profile(self, model, tokens):
        instances = harvest_instances(model, tokens, TraceSpec(positions=[70]))
        profile = harvested_dominance_profile(instances)
        assert profile.shape == (len(instances),)
        assert np.all((0 <= profile) & (profile <= 1))
