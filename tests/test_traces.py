"""Tests for attention-trace harvesting from the LM."""

import numpy as np
import pytest

from repro.core import TokenPickerConfig, token_picker_scores
from repro.model import TinyGPT, tiny_config
from repro.workloads.traces import (
    TraceSpec,
    harvest_instances,
    harvest_with_bias,
    harvested_dominance_profile,
)


@pytest.fixture(scope="module")
def model():
    return TinyGPT(
        tiny_config(name="trace", n_layers=2, d_model=32, n_heads=2,
                    vocab_size=16, max_context=96),
        seed=5,
    )


@pytest.fixture(scope="module")
def tokens():
    return np.random.default_rng(0).integers(0, 16, size=80)


class TestHarvest:
    def test_counts_and_shapes(self, model, tokens):
        spec = TraceSpec(positions=[40, 70])
        instances = harvest_instances(model, tokens, spec)
        # layers x heads x positions
        assert len(instances) == 2 * 2 * 2
        assert instances[0].q.shape == (16,)
        assert instances[0].keys.shape == (41, 16)
        assert instances[1].keys.shape == (71, 16)

    def test_layer_head_selection(self, model, tokens):
        spec = TraceSpec(positions=[40], layers=[1], heads=[0])
        instances = harvest_instances(model, tokens, spec)
        assert len(instances) == 1

    def test_position_validation(self, model, tokens):
        with pytest.raises(ValueError):
            harvest_instances(model, tokens, TraceSpec(positions=[0]))
        with pytest.raises(ValueError):
            harvest_instances(model, tokens, TraceSpec(positions=[500]))
        with pytest.raises(ValueError):
            harvest_instances(model, tokens[None, :], TraceSpec(positions=[4]))

    def test_instances_match_model_attention(self, model, tokens):
        """The harvested (q, K) reproduce the model's own probabilities."""
        spec = TraceSpec(positions=[60], layers=[0], heads=[1])
        (inst, bias), = harvest_with_bias(model, tokens, spec)
        scores = inst.keys @ inst.q / np.sqrt(16)
        if bias is not None:
            scores = scores + bias
        probs = np.exp(scores - scores.max())
        probs /= probs.sum()
        _, cache = model.forward(np.asarray(tokens)[None, :])
        model_probs = cache[1][0][5][0][1, 60, :61]
        assert np.allclose(probs, model_probs, atol=1e-10)

    def test_bias_present_for_alibi(self, model, tokens):
        pairs = harvest_with_bias(model, tokens, TraceSpec(positions=[30]))
        for inst, bias in pairs:
            assert bias is not None
            assert bias.shape == (31,)
            assert bias[-1] == 0.0  # newest token: zero distance

    def test_harvested_instances_prune_safely(self, model, tokens):
        pairs = harvest_with_bias(model, tokens, TraceSpec(positions=[70]))
        cfg = TokenPickerConfig(threshold=5e-3)
        for inst, bias in pairs:
            r = token_picker_scores(inst.q, inst.keys, cfg, score_bias=bias)
            p = np.exp(r.scores - r.scores.max())
            p /= p.sum()
            assert np.all(p[~r.kept] <= cfg.threshold + 1e-9)

    def test_dominance_profile(self, model, tokens):
        instances = harvest_instances(model, tokens, TraceSpec(positions=[70]))
        profile = harvested_dominance_profile(instances)
        assert profile.shape == (len(instances),)
        assert np.all((0 <= profile) & (profile <= 1))


class TestLongPromptBurstTrace:
    def test_shape_and_arrivals(self):
        from repro.workloads.traces import long_prompt_burst_trace

        rng = np.random.default_rng(0)
        trace = long_prompt_burst_trace(
            rng, n_heads=2, head_dim=16,
            n_short=6, short_prompt_tokens=16, short_max_new_tokens=8,
            n_long=2, long_prompt_tokens=96, long_max_new_tokens=2,
            long_arrival_step=3, long_gap_steps=5,
        )
        assert len(trace) == 8
        shorts, longs = trace[:6], trace[6:]
        assert all(arrival == 0 for arrival, _ in shorts)
        assert [arrival for arrival, _ in longs] == [3, 8]
        for _, request in shorts:
            assert request.prompt_tokens < 96
        for _, request in longs:
            assert request.prompt_tokens == 96
            assert request.max_new_tokens == 2

    def test_validation(self):
        from repro.workloads.traces import long_prompt_burst_trace

        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            long_prompt_burst_trace(rng, n_heads=2, head_dim=16, n_short=0)
        with pytest.raises(ValueError):
            long_prompt_burst_trace(
                rng, n_heads=2, head_dim=16,
                short_prompt_tokens=64, long_prompt_tokens=64,
            )
        with pytest.raises(ValueError):
            long_prompt_burst_trace(
                rng, n_heads=2, head_dim=16, long_arrival_step=-1
            )

    def test_reproduces_the_stall_and_the_fix(self):
        """The trace actually exercises chunked prefill: a finite budget
        splits the long prompt across steps and bounds per-step ingest."""
        from repro.core import TokenPickerConfig
        from repro.serving import ServingEngine
        from repro.workloads.traces import long_prompt_burst_trace

        def run(budget):
            engine = ServingEngine(
                TokenPickerConfig(threshold=2e-3),
                max_batch_size=8,
                capacity_tokens=2048,
                prefill_budget_tokens=budget,
            )
            trace = long_prompt_burst_trace(
                np.random.default_rng(1), n_heads=2, head_dim=16,
                n_short=4, short_prompt_tokens=12, short_max_new_tokens=10,
                n_long=1, long_prompt_tokens=120, long_max_new_tokens=2,
                long_arrival_step=2,
            )
            i, pending = 0, sorted(trace, key=lambda t: t[0])
            reports = []
            while i < len(pending) or engine.n_pending or engine.n_active:
                while i < len(pending) and pending[i][0] <= engine.step_index:
                    engine.submit(pending[i][1])
                    i += 1
                reports.append(engine.step())
            return max(r.prefill_tokens for r in reports)

        assert run(None) >= 120  # monolithic: whole prompt in one step
        assert run(16) <= 16  # budget bounds every step's ingest
