"""Tests for the attention backends (access accounting + outputs)."""

import numpy as np
import pytest

from repro.core.config import TokenPickerConfig
from repro.model.attention import (
    AccessCounter,
    EstimationOnlyBackend,
    ExactAttentionBackend,
    FixedRatioBackend,
    TokenPickerBackend,
)


@pytest.fixture
def instance():
    rng = np.random.default_rng(0)
    h, t, dh = 3, 64, 16
    keys = rng.normal(size=(h, t, dh))
    values = rng.normal(size=(h, t, dh))
    q = keys[:, -1] + keys[:, 0] + 0.5 * rng.normal(size=(h, dh))
    return q, keys, values


def exact_reference(q, keys, values):
    import math

    scores = np.einsum("htd,hd->ht", keys, q) / math.sqrt(q.shape[-1])
    m = scores.max(axis=1, keepdims=True)
    e = np.exp(scores - m)
    p = e / e.sum(axis=1, keepdims=True)
    return np.einsum("ht,htd->hd", p, values)


class TestExactBackend:
    def test_matches_reference(self, instance):
        q, keys, values = instance
        backend = ExactAttentionBackend()
        out = backend(0, q, keys, values)
        assert np.allclose(out, exact_reference(q, keys, values))

    def test_counts_full_traffic(self, instance):
        q, keys, values = instance
        backend = ExactAttentionBackend()
        backend(0, q, keys, values)
        c = backend.counter
        h, t, dh = keys.shape
        assert c.k_bits == h * t * dh * 12
        assert c.v_bits == c.k_bits
        assert c.keep_fraction == 1.0
        assert c.total_reduction == 1.0


class TestTokenPickerBackend:
    def test_requires_breadth(self):
        with pytest.raises(ValueError):
            TokenPickerBackend(TokenPickerConfig(schedule="depth"))

    def test_output_close_to_exact_at_tiny_threshold(self, instance):
        q, keys, values = instance
        backend = TokenPickerBackend(TokenPickerConfig(threshold=1e-9))
        out = backend(0, q, keys, values)
        ref = exact_reference(q, keys, values)
        assert np.linalg.norm(out - ref) < 0.05 * np.linalg.norm(ref) + 0.05

    def test_traffic_reduced_at_high_threshold(self, instance):
        q, keys, values = instance
        backend = TokenPickerBackend(TokenPickerConfig(threshold=5e-2))
        backend(0, q, keys, values)
        c = backend.counter
        assert c.v_bits < c.baseline_v_bits
        assert c.k_bits < c.baseline_k_bits
        assert c.keep_fraction < 1.0

    def test_counters_accumulate(self, instance):
        q, keys, values = instance
        backend = TokenPickerBackend(TokenPickerConfig())
        backend(0, q, keys, values)
        one = backend.counter.tokens_seen
        backend(1, q, keys, values)
        assert backend.counter.tokens_seen == 2 * one


class TestEstimationOnlyBackend:
    def test_streams_all_k(self, instance):
        q, keys, values = instance
        backend = EstimationOnlyBackend(threshold=5e-2)
        backend(0, q, keys, values)
        c = backend.counter
        assert c.k_bits == c.baseline_k_bits
        assert c.v_bits < c.baseline_v_bits

    def test_output_close_to_exact_when_keeping_everything(self, instance):
        q, keys, values = instance
        backend = EstimationOnlyBackend(threshold=1e-9)
        out = backend(0, q, keys, values)
        assert np.allclose(out, exact_reference(q, keys, values), atol=1e-8)

    def test_guard_keeps_newest(self, instance):
        q, keys, values = instance
        backend = EstimationOnlyBackend(threshold=0.9, prompt_guard=1)
        out = backend(0, q, keys, values)
        assert np.all(np.isfinite(out))

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            EstimationOnlyBackend(threshold=0.0)


class TestFixedRatioBackend:
    def test_keep_ratio_respected(self, instance):
        q, keys, values = instance
        backend = FixedRatioBackend(keep_ratio=0.25)
        backend(0, q, keys, values)
        c = backend.counter
        assert c.keep_fraction == pytest.approx(0.25, abs=0.02)

    def test_ratio_one_is_exact(self, instance):
        q, keys, values = instance
        backend = FixedRatioBackend(keep_ratio=1.0)
        out = backend(0, q, keys, values)
        assert np.allclose(out, exact_reference(q, keys, values), atol=1e-8)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            FixedRatioBackend(keep_ratio=0.0)
        with pytest.raises(ValueError):
            FixedRatioBackend(keep_ratio=1.2)

    def test_fixed_ratio_misses_instance_variability(self):
        """The Fig. 3 argument: a ratio tuned on a diffuse instance wastes
        fetches on a peaky one (and vice versa), unlike Token-Picker."""
        rng = np.random.default_rng(1)
        h, t, dh = 1, 128, 16
        keys = rng.normal(size=(h, t, dh))
        values = rng.normal(size=(h, t, dh))
        # peaky instance: one dominant token
        q_peaky = 6.0 * keys[:, 17]
        fixed = FixedRatioBackend(keep_ratio=0.5)
        fixed(0, q_peaky, keys, values)
        picker = TokenPickerBackend(TokenPickerConfig(threshold=1e-3))
        picker(0, q_peaky, keys, values)
        # adaptive pruning fetches far fewer V vectors on the peaky instance
        assert picker.counter.tokens_kept < fixed.counter.tokens_kept


class TestAccessCounter:
    def test_zero_division_guards(self):
        c = AccessCounter()
        assert c.total_reduction == float("inf")
        assert c.keep_fraction == 1.0

    def test_reduction_math(self):
        c = AccessCounter(k_bits=50, v_bits=25, baseline_k_bits=100,
                          baseline_v_bits=100)
        assert c.k_reduction == 2.0
        assert c.v_pruning_ratio == 4.0
        assert c.total_reduction == pytest.approx(200 / 75)
