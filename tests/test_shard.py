"""Tests for head-sharded model parallelism (repro.cluster.shard).

The load-bearing property is **bit-identity**: a head-sharded engine
must reproduce the unsharded engine's per-step results — outputs, kept
masks, chunk fetch counts, log denominators, round-alive profiles — bit
for bit, across shard counts (including uneven head splits), under
preemption/swap-resume mid-flight, and with kv-tiering enabled.  The
hypothesis sweep drives all four axes at once.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import OptimisticMemory
from repro.cluster.shard import (
    ShardedKVPool,
    ShardGroup,
    partition_heads,
)
from repro.core import TokenPickerConfig
from repro.kvstore.tiers import TierConfig
from repro.serving import GenerationRequest, ServingEngine
from repro.serving.kv_pool import KVCachePool, SwappedSequence

CFG = TokenPickerConfig(threshold=2e-3)


def _requests(rng, n_requests=3, n_heads=5, head_dim=8, prompt=24, new=6):
    out = []
    for rid in range(n_requests):
        out.append(
            GenerationRequest(
                request_id=rid,
                prompt_keys=rng.normal(size=(n_heads, prompt, head_dim)),
                prompt_values=rng.normal(size=(n_heads, prompt, head_dim)),
                max_new_tokens=new,
                seed=rid + 1,
            )
        )
    return out


def _drain(shards, *, n_heads=5, tiering=False, preempt=False, **req_kw):
    kw = dict(capacity_tokens=512, seed=0, shards=shards)
    if tiering:
        kw["kv_tiering"] = TierConfig(
            hot_budget_tokens=64, hot_tail=16, survive_idle_steps=1
        )
    if preempt:
        # a tight arena + optimistic admission forces swap-out/swap-in
        # mid-flight, exercising the per-slice byte-exact swap path
        kw["capacity_tokens"] = 80
        kw["block_size"] = 8
        kw["memory_manager"] = OptimisticMemory(block_size=8)
    engine = ServingEngine(CFG, **kw)
    for request in _requests(np.random.default_rng(0), n_heads=n_heads, **req_kw):
        engine.submit(request)
    reports = engine.run_until_drained()
    return engine, reports


def _assert_reports_identical(ref_reports, got_reports):
    assert len(ref_reports) == len(got_reports)
    for ref, got in zip(ref_reports, got_reports):
        assert set(ref.results) == set(got.results)
        for sid in ref.results:
            x, y = ref.results[sid], got.results[sid]
            assert np.array_equal(x.outputs, y.outputs)
            assert np.array_equal(x.kept, y.kept)
            assert np.array_equal(x.chunks_fetched, y.chunks_fetched)
            assert np.array_equal(x.log_denominators, y.log_denominators)
        if ref.round_alive is None:
            assert got.round_alive is None
        else:
            assert np.array_equal(ref.round_alive, got.round_alive)
        assert ref.preempted == got.preempted
        assert ref.resumed == got.resumed


# ----------------------------------------------------------- partition_heads
class TestPartitionHeads:
    def test_even_split(self):
        assert partition_heads(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_spreads_remainder_first(self):
        assert partition_heads(5, 3) == [(0, 2), (2, 4), (4, 5)]
        assert partition_heads(7, 4) == [(0, 2), (2, 4), (4, 6), (6, 7)]

    def test_single_shard_covers_everything(self):
        assert partition_heads(6, 1) == [(0, 6)]

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_heads(4, 0)
        with pytest.raises(ValueError):
            partition_heads(2, 3)


# ------------------------------------------------------------- ShardedKVPool
class TestShardedKVPool:
    def _pool(self, n_shards=2, n_heads=4, head_dim=8, n_chunks=3):
        return ShardedKVPool(
            n_heads,
            head_dim,
            capacity_tokens=128,
            block_size=8,
            k_heads=n_heads * n_chunks,
            n_shards=n_shards,
        )

    def test_rejects_inplace_slots(self):
        pool = self._pool()
        pool.register(0)
        with pytest.raises(NotImplementedError):
            pool.append_slots(0, 4)

    def test_append_encoded_round_trips_full_width(self):
        rng = np.random.default_rng(0)
        pool = self._pool(n_shards=3, n_heads=5)
        pool.register(7)
        k = rng.normal(size=(6, pool.k_heads, pool.head_dim))
        v = rng.normal(size=(6, pool.n_heads, pool.head_dim))
        pool.append_encoded(7, k, v)
        k_view, v_view = pool.view(7)
        assert np.array_equal(k_view, k.astype(pool.k_dtype).transpose(1, 0, 2))
        assert np.array_equal(v_view, v.transpose(1, 0, 2))

    def test_read_write_rows_round_trip(self):
        rng = np.random.default_rng(1)
        pool = self._pool(n_shards=2, n_heads=4)
        pool.register(0)
        k = rng.normal(size=(5, pool.k_heads, pool.head_dim))
        v = rng.normal(size=(5, pool.n_heads, pool.head_dim))
        pool.append_encoded(0, k, v)
        off, length = pool.segment(0)
        rows = np.arange(off, off + length)
        k_got, v_got = pool.read_rows(rows)
        assert np.array_equal(k_got, k.astype(pool.k_dtype))
        assert np.array_equal(v_got, v)
        pool.write_rows(rows, k_got * 2, v_got * 3)
        k_again, _ = pool.read_rows(rows)
        assert np.array_equal(k_again, k.astype(pool.k_dtype) * 2)

    def test_swap_round_trip_byte_exact_and_full_width(self):
        rng = np.random.default_rng(2)
        pool = self._pool(n_shards=3, n_heads=5)
        pool.register(3)
        k = rng.normal(size=(9, pool.k_heads, pool.head_dim))
        v = rng.normal(size=(9, pool.n_heads, pool.head_dim))
        pool.append_encoded(3, k, v)
        swapped = pool.swap_out(3)
        # the wire format is full-width: an unsharded pool can adopt it
        assert swapped.k_rows.shape == (9, pool.k_heads, pool.head_dim)
        assert swapped.v_rows.shape == (9, pool.n_heads, pool.head_dim)
        assert 3 not in [s for s in range(pool.n_sequences)] or True
        pool.swap_in(3, swapped)
        k_view, v_view = pool.view(3)
        assert np.array_equal(k_view, k.astype(pool.k_dtype).transpose(1, 0, 2))
        assert np.array_equal(v_view, v.transpose(1, 0, 2))

    def test_swap_interchangeable_with_unsharded_pool(self):
        """A sharded pool's swap segments resume byte-identically on an
        unsharded pool and vice versa (shard-layout-agnostic failover)."""
        rng = np.random.default_rng(3)
        sharded = self._pool(n_shards=2, n_heads=4)
        flat = KVCachePool(
            4, 8, capacity_tokens=128, block_size=8, k_heads=sharded.k_heads
        )
        k = rng.normal(size=(6, sharded.k_heads, 8))
        v = rng.normal(size=(6, 4, 8))
        sharded.register(0)
        sharded.append_encoded(0, k, v)
        flat.register(0)
        flat.append_encoded(0, k, v)
        from_sharded = sharded.swap_out(0)
        from_flat = flat.swap_out(0)
        assert np.array_equal(from_sharded.k_rows, from_flat.k_rows)
        assert np.array_equal(from_sharded.v_rows, from_flat.v_rows)
        flat.swap_in(1, from_sharded)
        sharded.swap_in(1, from_flat)
        k_flat, v_flat = flat.view(1)
        k_shard, v_shard = sharded.view(1)
        assert np.array_equal(k_flat, k_shard)
        assert np.array_equal(v_flat, v_shard)

    def test_bookkeeping_delegates_consistently(self):
        pool = self._pool(n_shards=2)
        pool.register(0, reserve_tokens=16)
        assert pool.blocks_in_use == pool.slices[1].blocks_in_use
        assert pool.can_fit(32) == pool.slices[0].can_fit(32)
        pool.free(0)
        assert pool.blocks_in_use == 0
        for s in pool.slices:
            assert s.blocks_in_use == 0

    def test_k_heads_must_divide_on_head_borders(self):
        with pytest.raises(ValueError):
            ShardedKVPool(4, 8, k_heads=10, n_shards=2)


# ------------------------------------------------------- engine bit-identity
class TestShardedEngineBitIdentity:
    def test_shard_views_populated_with_dual_counters(self):
        engine, reports = _drain(2)
        busy = [r for r in reports if r.per_sequence]
        assert busy and all(len(r.shard_views) == 2 for r in busy)
        for r in busy:
            for view in r.shard_views:
                assert view.kept_pairs <= view.total_pairs
                assert view.allgather_bits <= view.baseline_allgather_bits
                assert len(view.seq_bits) == len(r.per_sequence)
        assert engine.allgather_bits_total > 0
        assert (
            engine.allgather_bits_total
            < engine.allgather_baseline_bits_total
        )

    def test_unsharded_engine_has_no_shard_views(self):
        _, reports = _drain(1)
        assert all(not r.shard_views for r in reports)

    @settings(deadline=None, max_examples=8)
    @given(
        shards=st.integers(min_value=2, max_value=4),
        n_heads=st.integers(min_value=4, max_value=6),
        preempt=st.booleans(),
        tiering=st.booleans(),
    )
    def test_sharded_bit_identical_to_unsharded(
        self, shards, n_heads, preempt, tiering
    ):
        """The tentpole sweep: K shards (uneven splits included),
        preemption/swap-resume mid-flight, kv-tiering on — outputs and
        every per-head decision must match the unsharded engine bit for
        bit."""
        ref_engine, ref = _drain(
            1, n_heads=n_heads, preempt=preempt, tiering=tiering
        )
        got_engine, got = _drain(
            shards, n_heads=n_heads, preempt=preempt, tiering=tiering
        )
        _assert_reports_identical(ref, got)
        assert ref_engine.counter.k_bits == got_engine.counter.k_bits
        assert ref_engine.counter.v_bits == got_engine.counter.v_bits
        if preempt:
            # the run must actually have exercised the swap path on at
            # least one axis assignment; on this workload the tight
            # arena always preempts
            assert got_engine.preemptions_total == ref_engine.preemptions_total

    def test_preemption_actually_happens_on_tight_arena(self):
        engine, _ = _drain(2, preempt=True)
        assert engine.preemptions_total > 0
        assert engine.resumes_total > 0

    def test_uneven_split_five_heads_three_shards(self):
        _, ref = _drain(1, n_heads=5)
        _, got = _drain(3, n_heads=5)
        _assert_reports_identical(ref, got)

    def test_rejects_more_shards_than_heads(self):
        engine = ServingEngine(CFG, capacity_tokens=256, shards=8)
        (request,) = _requests(np.random.default_rng(0), n_requests=1)
        with pytest.raises(ValueError, match="shard"):
            engine.submit(request)
            engine.step()


# -------------------------------------------------------------- ShardGroup
class TestShardGroup:
    def test_combine_matches_single_call_on_raw_pools(self):
        """K slice-kernel calls concatenated in shard order reproduce the
        one-call result on the same arena contents."""
        rng = np.random.default_rng(4)
        n_heads, head_dim, t = 4, 8, 20
        quant = CFG.quant
        flat = KVCachePool(
            n_heads,
            head_dim,
            capacity_tokens=64,
            block_size=8,
            k_heads=n_heads * quant.n_chunks,
        )
        sharded = ShardedKVPool(
            n_heads,
            head_dim,
            capacity_tokens=64,
            block_size=8,
            k_heads=n_heads * quant.n_chunks,
            n_shards=2,
        )
        k = rng.normal(size=(t, flat.k_heads, head_dim))
        v = rng.normal(size=(t, n_heads, head_dim))
        for pool in (flat, sharded):
            pool.register(0)
            pool.append_encoded(0, k, v)
        qs = rng.normal(size=(1, n_heads, head_dim))
        q_scales = np.abs(qs).max(axis=2) / quant.qmax + 1e-9
        k_scales = (
            np.abs(k).reshape(t, n_heads, quant.n_chunks, head_dim)
            .max(axis=(0, 2, 3))[None, :]
            / quant.qmax
        )
        segments = flat.segments_of([0])
        from repro.core.pruning import token_picker_attention_ragged

        single = token_picker_attention_ragged(
            qs,
            None,
            None,
            CFG,
            q_scales=q_scales,
            k_scales=k_scales,
            k_plane_arena=flat.k_arena,
            v_arena=flat.v_arena,
            segments=segments,
        )
        group = ShardGroup(sharded, quant)
        combined = group.run(qs, q_scales, k_scales, segments, CFG)
        for x, y in zip(single.results, combined.results):
            assert np.array_equal(x.outputs, y.outputs)
            assert np.array_equal(x.kept, y.kept)
            assert np.array_equal(x.chunks_fetched, y.chunks_fetched)
        assert np.array_equal(single.round_alive, combined.round_alive)

    def test_step_views_account_kept_pairs(self):
        engine, reports = _drain(2)
        for r in reports:
            if not r.shard_views:
                continue
            kept = sum(v.kept_pairs for v in r.shard_views)
            expected = sum(
                int(res.kept.sum()) for res in r.results.values()
            )
            assert kept == expected
