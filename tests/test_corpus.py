"""Tests for the synthetic corpus generators."""

import numpy as np
import pytest

from repro.workloads.corpus import (
    DELIMITER_TOKEN,
    induction_corpus,
    markov_corpus,
    markov_transitions,
    mixed_corpus,
    train_eval_split,
)


class TestMarkov:
    def test_deterministic(self):
        a = markov_corpus(500, seed=1)
        b = markov_corpus(500, seed=1)
        assert np.array_equal(a, b)

    def test_token_range(self):
        c = markov_corpus(1000, vocab_size=32, seed=2)
        assert c.min() >= 0 and c.max() < 32
        assert len(c) == 1000

    def test_transition_seed_fixes_language(self):
        """Different sampling seeds over the same chain share statistics."""
        a = markov_corpus(4000, seed=1, transition_seed=9)
        b = markov_corpus(4000, seed=2, transition_seed=9)
        # same chain: the sets of observed bigrams overlap heavily
        bigrams_a = set(zip(a[:-1], a[1:]))
        bigrams_b = set(zip(b[:-1], b[1:]))
        overlap = len(bigrams_a & bigrams_b) / max(1, len(bigrams_a | bigrams_b))
        assert overlap > 0.5

    def test_sparse_transitions(self):
        """Each state has at most `branching` successors."""
        c = markov_corpus(5000, vocab_size=16, branching=3, seed=3)
        successors = {}
        for s, t in zip(c[:-1], c[1:]):
            successors.setdefault(int(s), set()).add(int(t))
        assert max(len(v) for v in successors.values()) <= 3

    def test_low_entropy(self):
        """Branching-4 chains have far lower bigram entropy than uniform."""
        c = markov_corpus(20000, vocab_size=64, branching=4, seed=4)
        counts = {}
        for s, t in zip(c[:-1], c[1:]):
            counts.setdefault(int(s), {}).setdefault(int(t), 0)
            counts[int(s)][int(t)] += 1
        entropies = []
        for s, nxt in counts.items():
            total = sum(nxt.values())
            p = np.array(list(nxt.values())) / total
            entropies.append(-(p * np.log(p)).sum())
        assert np.mean(entropies) < np.log(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            markov_corpus(0)
        with pytest.raises(ValueError):
            markov_transitions(1, 1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            markov_transitions(8, 9, np.random.default_rng(0))


class TestInduction:
    def test_contains_delimiters(self):
        c = induction_corpus(2000, seed=5)
        assert (c == DELIMITER_TOKEN).sum() > 5

    def test_motifs_repeat(self):
        """Repeated motifs create exact long-range matches."""
        c = induction_corpus(2000, noise=0.0, seed=6)
        # find a delimiter followed by a motif; the motif repeats right after
        delims = np.flatnonzero(c == DELIMITER_TOKEN)
        found_repeat = False
        for d in delims[:-1]:
            nxt = delims[delims > d]
            seg_end = nxt[0] if len(nxt) else len(c)
            seg = c[d + 1 : seg_end]
            if len(seg) >= 4:
                half = len(seg) // 2
                for m in range(3, half):
                    if np.array_equal(seg[:m], seg[m : 2 * m]):
                        found_repeat = True
                        break
            if found_repeat:
                break
        assert found_repeat

    def test_length_and_range(self):
        c = induction_corpus(777, vocab_size=32, seed=7)
        assert len(c) == 777
        assert c.max() < 32

    def test_validation(self):
        with pytest.raises(ValueError):
            induction_corpus(100, vocab_size=2)
        with pytest.raises(ValueError):
            induction_corpus(100, motif_len_range=(5, 3))


class TestMixed:
    def test_deterministic_and_complete(self):
        a = mixed_corpus(3000, seed=8)
        b = mixed_corpus(3000, seed=8)
        assert np.array_equal(a, b)
        assert len(a) == 3000

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            mixed_corpus(100, induction_fraction=1.5)


class TestSplit:
    def test_split_sizes(self):
        c = np.arange(100)
        tr, ev = train_eval_split(c, 0.2)
        assert len(tr) == 80 and len(ev) == 20
        assert np.array_equal(np.concatenate([tr, ev]), c)

    def test_validation(self):
        with pytest.raises(ValueError):
            train_eval_split(np.arange(100), 0.0)
        with pytest.raises(ValueError):
            train_eval_split(np.arange(2), 0.9)
