"""Streaming span sink: incremental flush, crash recovery, gzip,
buffered/streamed equivalence, and the dual-clock cycle track.

The acceptance bar for the streaming path is twofold:

* **equivalence** — one seeded run teed through the buffered and the
  streaming sink must produce span logs whose ``analyze`` summaries are
  bit-exact (same floats, same JSON);
* **crash tolerance** — a run killed mid-flight (simulated by closing
  the sink while spans are open, plus a torn final line) must still
  yield a readable log, with exactly the then-open spans reported as
  unterminated.
"""

import gzip
import json

import numpy as np
import pytest

from repro.core import TokenPickerConfig
from repro.obs import (
    BufferedSink,
    JsonlStreamingSink,
    TeeSink,
    Tracer,
    span_records_to_perfetto,
    validate_span_log_file,
    validate_trace,
)
from repro.obs.analyze import analyze_file
from repro.serving import ServingEngine, synthetic_request

CFG = TokenPickerConfig(threshold=2e-3)


def _drive_engine(tracer, n_requests=6, seed=0, cycle_sim=None):
    engine = ServingEngine(
        CFG,
        max_batch_size=4,
        capacity_tokens=4096,
        seed=seed,
        tracer=tracer,
        cycle_sim=cycle_sim,
    )
    rng = np.random.default_rng(seed)
    for _ in range(n_requests):
        engine.submit(synthetic_request(rng, 2, 32, 16, 4))
    engine.run_until_drained()
    return engine


def _summary_json(path) -> str:
    return json.dumps(analyze_file(path).summary(), sort_keys=True)


def test_streamed_analysis_bit_exact_vs_buffered(tmp_path):
    """One seeded run, teed: the streamed log must analyze to byte-for-
    byte the same summary as the buffered sink's log — same wall floats,
    same histograms, nothing lost in the incremental path."""
    streamed_path = tmp_path / "run.jsonl"
    buffered = BufferedSink()
    tracer = Tracer(sink=TeeSink(buffered, JsonlStreamingSink(streamed_path)))
    _drive_engine(tracer)
    tracer.close()

    buffered_path = tmp_path / "buffered.jsonl"
    tracer.write_span_log(buffered_path)

    assert _summary_json(streamed_path) == _summary_json(buffered_path)
    # a complete run's B records all cancel: nothing unterminated
    assert analyze_file(streamed_path).summary()["unterminated_spans"] == []


def test_streaming_sink_flushes_incrementally(tmp_path):
    """Closed spans are on disk before the run ends — the file grows
    while the tracer holds only open spans."""
    path = tmp_path / "live.jsonl"
    sink = JsonlStreamingSink(path)
    tracer = Tracer(sink=sink)
    tracer.begin("engine", "req0", "request")
    tracer.instant("engine", "req0", "first_token")
    on_disk = path.read_text().splitlines()
    # the B open-record and the instant are already flushed
    assert [json.loads(line)["ph"] for line in on_disk] == ["B", "i"]
    tracer.end("engine", "req0", "request")
    assert [
        json.loads(line)["ph"] for line in path.read_text().splitlines()
    ] == ["B", "i", "X"]
    assert sink.events_written == 2  # B records are not events
    tracer.close()
    with pytest.raises(AttributeError, match="streams spans to disk"):
        tracer.events


def test_peak_open_spans_is_resident_bound(tmp_path):
    """The tracer's peak open-span count tracks nesting depth, not trace
    length: a long run streams hundreds of events through a peak of a
    dozen."""
    sink = JsonlStreamingSink(tmp_path / "run.jsonl")
    tracer = Tracer(sink=sink)
    _drive_engine(tracer, n_requests=8)
    tracer.close()
    assert sink.events_written > 50
    # <= open requests (4 in flight) + engine step + phase + cycle spans
    assert tracer.peak_open_spans <= 16


def test_crash_recovery_flags_exactly_open_spans(tmp_path):
    """Kill a run mid-flight (sink closed with spans open, torn tail
    line appended): analyze must rebuild metrics from the partial log
    and name exactly the then-open spans as unterminated."""
    path = tmp_path / "crashed.jsonl"
    sink = JsonlStreamingSink(path)
    tracer = Tracer(sink=sink)
    tracer.begin("engine", "req0", "request", args={"prompt_tokens": 32})
    tracer.begin("engine", "req1", "request")
    tracer.instant("engine", "req0", "first_token")
    tracer.begin("engine", "steps", "engine_step")
    tracer.end(
        "engine", "steps", "engine_step",
        args={"tokens": 2, "wall_seconds": 1e-3},
    )
    tracer.begin("engine", "steps", "engine_step")  # dies inside step 2

    open_now = sorted(tracer.open_spans())
    sink.close()  # the "crash": no more writes land
    tracer.end("engine", "steps", "engine_step")  # lost, post-crash
    with open(path, "a") as fh:
        fh.write('{"name": "request", "ph": "X", "trunc')  # torn tail

    analysis = analyze_file(path)
    assert sorted(analysis.unterminated) == open_now
    assert analysis.unterminated == [
        ("engine", "req0", "request"),
        ("engine", "req1", "request"),
        ("engine", "steps", "engine_step"),
    ]
    # the closed step span's metrics survived the crash
    assert analysis.step_spans == 1
    summary = analysis.summary()
    assert summary["replicas"]["engine"]["token_latency_seconds"]["count"] == 2
    assert len(summary["unterminated_spans"]) == 3


def test_truncated_tail_midfile_corruption_still_raises(tmp_path):
    """Only the *final* line may be torn; garbage followed by more
    events is real corruption and must not be silently dropped."""
    path = tmp_path / "corrupt.jsonl"
    sink = JsonlStreamingSink(path)
    tracer = Tracer(sink=sink)
    tracer.begin("engine", "req0", "request")
    tracer.end("engine", "req0", "request")
    tracer.close()
    lines = path.read_text().splitlines()
    lines.insert(1, '{"broken')
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(json.JSONDecodeError):
        analyze_file(path)


def test_gzip_round_trip(tmp_path):
    """A ``.jsonl.gz`` path gzips transparently in the sink, the
    buffered exporter, the validator, and the analyzer."""
    gz_stream = tmp_path / "run.jsonl.gz"
    buffered = BufferedSink()
    tracer = Tracer(sink=TeeSink(buffered, JsonlStreamingSink(gz_stream)))
    _drive_engine(tracer)
    tracer.close()
    gz_export = tmp_path / "export.jsonl.gz"
    tracer.write_span_log(gz_export)

    with gzip.open(gz_stream, "rt") as fh:
        assert json.loads(fh.readline())["ph"] == "B"
    assert validate_span_log_file(gz_stream) > 0
    assert validate_span_log_file(gz_export) > 0
    assert _summary_json(gz_stream) == _summary_json(gz_export)


def test_cycle_track_streams_and_validates(tmp_path):
    """A traced engine with a cycle model streams the dual-clock track:
    modelled_step spans on thread "cycles" with exact cycle args, and
    the post-hoc Perfetto projection passes full schema validation."""
    from repro.hw.serving import ServingSimulator
    from repro.model.config import get_model_config

    path = tmp_path / "cycles.jsonl"
    tracer = Tracer(sink=JsonlStreamingSink(path))
    sim = ServingSimulator(
        get_model_config("gpt2-medium"), context_length=64, config=CFG
    )
    _drive_engine(tracer, cycle_sim=sim)
    tracer.close()

    analysis = analyze_file(path)
    modelled = analysis.modelled["engine"]
    assert modelled["steps"] > 0
    assert modelled["total_cycles"] > 0
    assert modelled["modelled_seconds"] > 0
    assert (
        modelled["weights_cycles"]
        + modelled["attention_cycles"]
        + modelled["prefill_cycles"]
        == modelled["total_cycles"]
    )
    summary = analysis.summary()
    assert summary["replicas"]["engine"]["modelled"]["steps"] == modelled[
        "steps"
    ]

    from repro.obs.analyze import load_events

    record = span_records_to_perfetto(load_events(path))
    validate_trace(record, name="cycles")
    cycle_spans = [
        e
        for e in record["traceEvents"]
        if e.get("ph") == "X" and e["name"] == "modelled_step"
    ]
    assert len(cycle_spans) == modelled["steps"]
