"""Tests for token processing-order policies."""

import numpy as np
import pytest

from repro.core.ordering import order_rank, processing_order


class TestProcessingOrder:
    @pytest.mark.parametrize("policy", ["sink_recency", "recency", "chronological"])
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 7, 100])
    def test_is_permutation(self, policy, n):
        order = processing_order(n, policy)
        assert sorted(order.tolist()) == list(range(n))

    def test_chronological(self):
        assert processing_order(4, "chronological").tolist() == [0, 1, 2, 3]

    def test_recency(self):
        assert processing_order(4, "recency").tolist() == [3, 2, 1, 0]

    def test_sink_recency_structure(self):
        order = processing_order(6, "sink_recency").tolist()
        # newest first, sink second, then reverse chronological
        assert order == [5, 0, 4, 3, 2, 1]

    def test_sink_recency_small(self):
        assert processing_order(1, "sink_recency").tolist() == [0]
        assert processing_order(2, "sink_recency").tolist() == [1, 0]

    def test_unknown_policy(self):
        with pytest.raises(ValueError):
            processing_order(5, "zigzag")

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            processing_order(-1)


class TestOrderRank:
    @pytest.mark.parametrize("policy", ["sink_recency", "recency", "chronological"])
    def test_rank_is_inverse(self, policy):
        n = 17
        order = processing_order(n, policy)
        rank = order_rank(n, policy)
        assert np.array_equal(order[rank[order]], order)
        for position, token in enumerate(order):
            assert rank[token] == position


class TestOrderEffectOnPruning:
    def test_sink_recency_prunes_at_least_chronological(self):
        """Processing dominant tokens first strengthens early prune checks.

        With a recency-skewed score profile (the common case in generation),
        the paper's order should never do much worse than chronological; in
        aggregate it prunes more K chunks.
        """
        from repro.core import TokenPickerConfig, token_picker_scores

        rng = np.random.default_rng(0)
        totals = {"sink_recency": 0, "chronological": 0}
        for seed in range(5):
            r2 = np.random.default_rng(seed)
            t, d = 128, 32
            keys = r2.normal(size=(t, d))
            # recent tokens dominant
            q = keys[-3:].sum(axis=0) + 0.2 * r2.normal(size=d)
            for policy in totals:
                cfg = TokenPickerConfig(
                    threshold=1e-3, order=policy, schedule="depth"
                )
                res = token_picker_scores(q, keys, cfg)
                totals[policy] += res.stats.k_chunks_fetched
        assert totals["sink_recency"] <= totals["chronological"]
