"""Tests for the SpAtten comparator model."""

import numpy as np
import pytest

from repro.core.config import QuantConfig
from repro.hw.spatten import (
    SpAttenBackend,
    SpAttenConfig,
    baseline_generation_accesses,
    spatten_generation_accesses,
    topick_generation_accesses,
)


class TestSpAttenConfig:
    def test_keep_ratio_schedule(self):
        cfg = SpAttenConfig(n_layers=5, final_keep_ratio=0.4)
        assert cfg.keep_ratio(0) == 1.0
        assert np.isclose(cfg.keep_ratio(4), 0.4)
        ratios = [cfg.keep_ratio(l) for l in range(5)]
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_single_layer(self):
        assert SpAttenConfig(n_layers=1, final_keep_ratio=0.3).keep_ratio(0) == 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            SpAttenConfig(n_layers=0)
        with pytest.raises(ValueError):
            SpAttenConfig(n_layers=2, final_keep_ratio=0.0)
        with pytest.raises(ValueError):
            SpAttenConfig(n_layers=2, v_keep_ratio=1.5)
        with pytest.raises(ValueError):
            SpAttenConfig(n_layers=2).keep_ratio(2)


class TestSpAttenBackend:
    def _run(self, backend, t=32, h=2, dh=8, layers=2, seed=0):
        rng = np.random.default_rng(seed)
        out = None
        for step_t in range(4, t):
            for layer in range(layers):
                keys = rng.normal(size=(h, step_t, dh))
                values = rng.normal(size=(h, step_t, dh))
                q = rng.normal(size=(h, dh))
                out = backend(layer, q, keys, values)
        return out

    def test_output_shape(self):
        backend = SpAttenBackend(SpAttenConfig(n_layers=2, final_keep_ratio=0.5))
        out = self._run(backend)
        assert out.shape == (2, 8)
        assert np.all(np.isfinite(out))

    def test_cascade_prunes_persistently(self):
        backend = SpAttenBackend(SpAttenConfig(n_layers=2, final_keep_ratio=0.25))
        self._run(backend, t=40)
        assert len(backend.cascade_pruned) > 0

    def test_access_counting(self):
        backend = SpAttenBackend(SpAttenConfig(n_layers=2, final_keep_ratio=0.5))
        self._run(backend)
        c = backend.counter
        assert 0 < c.k_bits <= c.baseline_k_bits
        assert 0 < c.v_bits <= c.k_bits  # local V pruning on top of token pruning
        assert c.total_reduction > 1.0

    def test_full_keep_fetches_all_k(self):
        backend = SpAttenBackend(
            SpAttenConfig(n_layers=1, final_keep_ratio=1.0, v_keep_ratio=1.0)
        )
        self._run(backend, layers=1)
        c = backend.counter
        assert c.k_bits == c.baseline_k_bits
        assert c.v_bits == c.baseline_v_bits

    def test_newest_token_never_pruned(self):
        backend = SpAttenBackend(SpAttenConfig(n_layers=1, final_keep_ratio=0.1))
        rng = np.random.default_rng(1)
        for t in range(4, 30):
            backend(0, rng.normal(size=(1, 8)), rng.normal(size=(1, t, 8)),
                    rng.normal(size=(1, t, 8)))
        # position t-1 is always alive at call time, so it must never be in
        # the cascade set before being revisited
        assert 29 not in backend.cascade_pruned or len(backend.importance) > 29


class TestGenerationAccessModels:
    N_LAYERS, N_HEADS, HEAD_DIM = 24, 16, 64

    def _baseline(self, a=256, b=512):
        return baseline_generation_accesses(
            a, b, self.N_LAYERS, self.N_HEADS, self.HEAD_DIM
        )

    def test_baseline_symmetry(self):
        acc = self._baseline()
        assert acc.k_bytes == acc.v_bytes

    def test_baseline_grows_with_run_length(self):
        short = self._baseline(256, 512)
        long = self._baseline(256, 1024)
        assert long.total > short.total

    def test_invalid_ranges(self):
        with pytest.raises(ValueError):
            baseline_generation_accesses(512, 512, 2, 2, 8)
        with pytest.raises(ValueError):
            spatten_generation_accesses(
                10, 5, SpAttenConfig(n_layers=2), 2, 8
            )

    def test_spatten_beats_baseline(self):
        cfg = SpAttenConfig(n_layers=self.N_LAYERS, final_keep_ratio=0.5)
        sp = spatten_generation_accesses(256, 512, cfg, self.N_HEADS, self.HEAD_DIM)
        base = self._baseline()
        assert sp.total < base.total

    def test_spatten_long_prompt_advantage(self):
        """Cascade saves more (relatively) when the prompt is long."""
        cfg = SpAttenConfig(n_layers=self.N_LAYERS, final_keep_ratio=0.4)
        short_prompt = spatten_generation_accesses(
            256, 1024, cfg, self.N_HEADS, self.HEAD_DIM
        ).total / self._baseline(256, 1024).total
        long_prompt = spatten_generation_accesses(
            768, 1024, cfg, self.N_HEADS, self.HEAD_DIM
        ).total / self._baseline(768, 1024).total
        assert long_prompt <= short_prompt

    def test_topick_model(self):
        acc = topick_generation_accesses(
            256, 512, self.N_LAYERS, self.N_HEADS, self.HEAD_DIM,
            keep_fraction=0.08, mean_chunks=2.1,
        )
        base = self._baseline()
        assert acc.k_bytes < base.k_bytes
        assert acc.v_bytes < 0.1 * base.v_bytes

    def test_topick_validation(self):
        with pytest.raises(ValueError):
            topick_generation_accesses(1, 2, 1, 1, 8, keep_fraction=0.0, mean_chunks=2)
        with pytest.raises(ValueError):
            topick_generation_accesses(1, 2, 1, 1, 8, keep_fraction=0.5, mean_chunks=9)
