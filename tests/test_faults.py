"""Fault injection, failover recovery, and cancellation accounting.

The properties this file pins:

* **Bit identity under faults** — completed-request outputs (lifetime
  pruning traffic + generated token counts) under *random* seeded fault
  schedules are exactly those of a fault-free run: re-prefill replays
  from the request seed, swap-resume continues from a byte-exact host
  copy, and neither path is allowed to perturb a single bit.
* **Exact release on cancellation** — cancelling requests in any phase
  (queued, mid-prefill, decoding, preempted) returns the arena, the
  tier store and the radix prefix refcounts exactly to baseline; a
  leaked :class:`~repro.kvstore.radix.PrefixHandle` refcount shows up
  here as a non-evictable extent.
* **Router health bookkeeping** — kills/revives move replicas through
  live → dead → live, summaries report the states distinctly, and
  drained/dead replicas no longer skew fleet occupancy means.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterRouter,
    FaultEvent,
    FaultInjector,
    fault_schedule,
)
from repro.core import TokenPickerConfig
from repro.kvstore.radix import RadixKVCache
from repro.kvstore.tiers import TierConfig
from repro.serving import RequestState, ServingEngine, synthetic_request
from repro.workloads import failover_trace

N_HEADS, HEAD_DIM = 2, 8


def _router(n_replicas=3, seed=11, **kw) -> ClusterRouter:
    kw.setdefault("max_batch_size", 2)
    kw.setdefault("capacity_tokens", 256)
    return ClusterRouter(n_replicas, seed=seed, **kw)


def _trace(n=8, seed=5, max_new=12):
    return failover_trace(
        np.random.default_rng(seed),
        n_heads=N_HEADS,
        head_dim=HEAD_DIM,
        n_requests=n,
        arrivals_per_step=1,
        prompt_tokens=10,
        max_new_tokens=max_new,
        prompt_jitter=6,
        new_token_jitter=6,
    )


def _traffic(outputs):
    return {
        key: (
            done.stats.counter.k_bits,
            done.stats.counter.v_bits,
            done.stats.generated_tokens,
        )
        for key, done in outputs.items()
    }


class TestFaultSchedule:
    def test_deterministic(self):
        a = fault_schedule(3, 4, n_kills=3, n_spikes=2)
        b = fault_schedule(3, 4, n_kills=3, n_spikes=2)
        assert a == b
        c = fault_schedule(4, 4, n_kills=3, n_spikes=2)
        assert a != c

    def test_never_two_dead_at_once(self):
        for seed in range(12):
            dead = set()
            for ev in fault_schedule(seed, 2, n_kills=4, revive_after=5):
                if ev.action == "kill":
                    assert ev.replica not in dead
                    dead.add(ev.replica)
                    assert len(dead) < 2
                elif ev.action == "revive":
                    dead.discard(ev.replica)

    def test_event_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(step=0, action="explode", replica=0)
        with pytest.raises(ValueError):
            FaultEvent(step=0, action="spike", replica=0, spike_seconds=0.0)
        with pytest.raises(ValueError):
            fault_schedule(0, 1)


class TestKillRevive:
    def test_kill_excludes_from_routing(self):
        router = _router()
        router.kill_replica(1)
        assert router.replica_status(1) == "dead"
        assert 1 not in router.routable()
        rng = np.random.default_rng(0)
        for _ in range(6):
            rid, _ = router.submit(
                synthetic_request(rng, N_HEADS, 10, HEAD_DIM, 4)
            )
            assert rid != 1

    def test_cannot_kill_last_routable(self):
        router = _router(n_replicas=2)
        router.kill_replica(0)
        with pytest.raises(RuntimeError):
            router.kill_replica(1)
        # the refused kill must roll back cleanly
        assert router.replica_status(1) == "live"

    def test_double_kill_and_bad_revive_raise(self):
        router = _router()
        router.kill_replica(0)
        with pytest.raises(ValueError):
            router.kill_replica(0)
        with pytest.raises(ValueError):
            router.revive_replica(1)  # not dead

    def test_revive_is_fresh_but_keeps_history(self):
        router = _router(n_replicas=2)
        rng = np.random.default_rng(1)
        for _ in range(4):
            router.submit(synthetic_request(rng, N_HEADS, 10, HEAD_DIM, 3))
        router.run_until_drained()
        completed_before = router.summary()["requests_completed"]
        assert completed_before == 4
        victim = 0 if any(rid == 0 for rid, _ in router.completed) else 1
        router.kill_replica(victim)
        router.revive_replica(victim)
        assert router.replica_status(victim) == "live"
        assert router.replicas[victim].step_index == 0
        # completions served before the kill survive the replica swap
        assert router.summary()["requests_completed"] == completed_before
        assert len(router.completed) == 4

    def test_summary_reports_states(self):
        router = _router(n_replicas=3)
        router.drain(1)
        router.kill_replica(2)
        summary = router.summary()
        assert summary["replicas_live"] == 1
        assert summary["replicas_draining"] == 1
        assert summary["replicas_dead"] == 1
        states = {r["replica"]: r["status"] for r in summary["per_replica"]}
        assert states == {0: "live", 1: "draining", 2: "dead"}


class TestFailoverHarvest:
    def test_harvest_releases_everything(self):
        engine = ServingEngine(
            max_batch_size=2, capacity_tokens=256, seed=3
        )
        rng = np.random.default_rng(2)
        for _ in range(4):
            engine.submit(synthetic_request(rng, N_HEADS, 10, HEAD_DIM, 8))
        for _ in range(3):
            engine.step()
        harvest = engine.harvest_for_failover()
        assert harvest.n_requests == 4
        assert engine.pool.blocks_in_use == 0
        assert engine.n_active == 0 and engine.n_pending == 0
        for request in harvest.queued + harvest.lost:
            assert request.state == RequestState.QUEUED

    def test_swap_resume_is_bit_identical(self):
        """A preempted sequence killed with its replica resumes
        byte-exactly on a survivor via export/adopt."""
        def run(interrupt: bool):
            router = _router(n_replicas=2, seed=9)
            rng = np.random.default_rng(4)
            requests = [
                synthetic_request(rng, N_HEADS, 12, HEAD_DIM, 10)
                for _ in range(2)
            ]
            inj = FaultInjector(router, [])
            for i, request in enumerate(requests):
                inj.submit(request, key=i)
            for _ in range(4):
                inj.step()
            if interrupt:
                # preempt whatever replica 0 is decoding, then kill it:
                # the harvest carries the swapped host copy
                engine = router.replicas[0]
                seq_ids = [
                    sid
                    for sid, e in engine._active.items()
                    if not e.external
                ]
                for sid in seq_ids:
                    engine.preempt(sid)
                inj._apply(FaultEvent(step=0, action="kill", replica=0))
            while router.busy or inj.pending_retries:
                inj.step()
            return inj

        clean = run(False)
        faulted = run(True)
        assert faulted.stats.kills == 1
        assert faulted.stats.swap_resumes >= 1
        assert set(clean.outputs) == set(faulted.outputs)
        assert _traffic(clean.outputs) == _traffic(faulted.outputs)

    def test_adoption_into_tiered_engine_falls_back_to_reprefill(self):
        donor = ServingEngine(max_batch_size=2, capacity_tokens=256, seed=1)
        rng = np.random.default_rng(5)
        donor.submit(synthetic_request(rng, N_HEADS, 10, HEAD_DIM, 8))
        for _ in range(3):
            donor.step()
        donor.preempt(next(iter(donor._active)))
        harvest = donor.harvest_for_failover()
        assert len(harvest.swapped) == 1
        tiered = ServingEngine(
            max_batch_size=2,
            capacity_tokens=256,
            seed=1,
            kv_tiering=TierConfig(hot_budget_tokens=64),
        )
        with pytest.raises(ValueError):
            tiered.adopt_preempted(harvest.swapped[0])


class TestFaultInjectorBitIdentity:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n_kills=st.integers(min_value=1, max_value=3),
    )
    def test_random_fault_schedules_are_bit_identical(self, seed, n_kills):
        """Hypothesis sweep: any valid seeded fault schedule yields
        completed outputs bit-identical to the fault-free run."""
        def run(schedule):
            inj = FaultInjector(_router(seed=13), schedule)
            inj.run_trace(_trace(n=6, seed=seed % 97, max_new=8))
            return inj

        schedule = fault_schedule(
            seed, 3, n_kills=n_kills, revive_after=4, n_spikes=1
        )
        clean = run([])
        faulted = run(schedule)
        assert set(clean.outputs) == set(range(6))
        assert set(faulted.outputs) == set(range(6))
        assert _traffic(clean.outputs) == _traffic(faulted.outputs)

    def test_backoff_caps(self):
        inj = FaultInjector(
            _router(), [], retry_base_steps=1, retry_cap_steps=8
        )
        assert [inj._backoff(a) for a in (1, 2, 3, 4, 5, 6)] == [
            1, 2, 4, 8, 8, 8,
        ]
        with pytest.raises(ValueError):
            FaultInjector(_router(), [], retry_base_steps=0)


class TestCancellation:
    def _engine(self, **kw):
        kw.setdefault("max_batch_size", 4)
        kw.setdefault("capacity_tokens", 1024)
        kw.setdefault("seed", 3)
        return ServingEngine(**kw)

    def test_cancel_queued_active_preempted(self):
        engine = self._engine(max_batch_size=2)
        rng = np.random.default_rng(6)
        ids = [
            engine.submit(synthetic_request(rng, N_HEADS, 10, HEAD_DIM, 12))
            for _ in range(4)
        ]
        for _ in range(2):
            engine.step()
        # ids[0]/ids[1] decoding, ids[2]/ids[3] queued
        engine.preempt(next(iter(engine._active)))
        for rid in ids:
            done = engine.cancel(rid)
            assert done.state == RequestState.CANCELLED
        assert engine.cancelled_total == 4
        assert engine.pool.blocks_in_use == 0
        assert engine.n_active == engine.n_pending == engine.n_preempted == 0
        with pytest.raises(KeyError):
            engine.cancel(ids[0])  # already terminal
        with pytest.raises(KeyError):
            engine.cancel(999)

    def test_cancellation_storm_returns_to_baseline(self):
        """Cancel 50% of a chunked-prefill storm mid-prefill: pool and
        tier accounting must return exactly to baseline."""
        engine = self._engine(
            max_batch_size=8,
            capacity_tokens=2048,
            prefill_budget_tokens=16,
            kv_tiering=TierConfig(hot_budget_tokens=64, hot_tail=4),
        )
        rng = np.random.default_rng(7)
        ids = [
            engine.submit(synthetic_request(rng, N_HEADS, 48, HEAD_DIM, 6))
            for _ in range(8)
        ]
        engine.step()  # some sequences are now mid-prefill
        assert engine.n_prefilling > 0
        for rid in ids[::2]:
            done = engine.cancel(rid)
            assert done.state == RequestState.CANCELLED
        engine.run_until_drained()
        assert engine.pool.blocks_in_use == 0
        assert engine.tiers.total_hot_tokens == 0
        assert engine.tiers.total_cold_tokens == 0
        assert len(engine.completed) == 4
        assert engine.cancelled_total == 4

    def test_cancel_mid_prefill_releases_prefix_refcounts(self):
        """Regression: a request cancelled mid-prefill must release its
        radix PrefixHandle — a leak keeps the extent referenced and the
        cache can never evict it."""
        cache = RadixKVCache()
        engine = self._engine(
            max_batch_size=4,
            capacity_tokens=2048,
            prefill_budget_tokens=16,
            prefix_cache=cache,
        )
        rng = np.random.default_rng(8)
        shared_k = rng.normal(size=(N_HEADS, 32, HEAD_DIM))
        shared_v = rng.normal(size=(N_HEADS, 32, HEAD_DIM))
        from repro.serving import GenerationRequest

        ids = []
        for _ in range(4):
            suffix_k = rng.normal(size=(N_HEADS, 8, HEAD_DIM))
            suffix_v = rng.normal(size=(N_HEADS, 8, HEAD_DIM))
            ids.append(
                engine.submit(
                    GenerationRequest(
                        prompt_keys=np.concatenate(
                            [shared_k, suffix_k], axis=1
                        ),
                        prompt_values=np.concatenate(
                            [shared_v, suffix_v], axis=1
                        ),
                        max_new_tokens=4,
                        seed=int(rng.integers(0, 2**31 - 1)),
                    )
                )
            )
        engine.step()
        assert engine.n_prefilling > 0
        for rid in ids[::2]:
            engine.cancel(rid)
        engine.run_until_drained()
        # every handle released: the whole cache is evictable
        evicted = cache.evict_unreferenced(keep_tokens=0)
        assert cache.total_tokens == 0, (
            f"leaked prefix refcounts pin {cache.total_tokens} tokens "
            f"(evicted {evicted})"
        )

    def test_expire_deadlines_with_injected_clock(self):
        engine = self._engine()
        rng = np.random.default_rng(9)
        request = synthetic_request(rng, N_HEADS, 10, HEAD_DIM, 8)
        request.deadline_ms = 50.0
        engine.submit(request)
        assert engine.expire_deadlines(request.submitted_wall + 0.01) == []
        expired = engine.expire_deadlines(request.submitted_wall + 0.2)
        assert [d.state for d in expired] == [RequestState.TIMED_OUT]
        assert engine.timed_out_total == 1
        # still queued at expiry: nothing was ever pooled
        assert engine.pool is None or engine.pool.blocks_in_use == 0

    def test_deadline_validation(self):
        rng = np.random.default_rng(10)
        request = synthetic_request(rng, N_HEADS, 10, HEAD_DIM, 4)
        request.deadline_ms = -1.0
        with pytest.raises(ValueError):
            request.__post_init__()


class TestOccupancyAccounting:
    def test_drained_replica_does_not_skew_occupancy(self):
        """A replica drained early must not keep averaging zeros into its
        occupancy mean while the rest of the fleet works."""
        router = _router(n_replicas=2, seed=21)
        rng = np.random.default_rng(11)
        for _ in range(4):
            router.submit(synthetic_request(rng, N_HEADS, 10, HEAD_DIM, 20))
        for _ in range(3):
            router.step()
        busy_occ = {rid: router.mean_batch_occupancy(rid) for rid in (0, 1)}
        router.drain(1)
        router.rebalance(1)
        router.run_until_drained()
        # replica 1 stopped accumulating once drained and idle: its mean
        # reflects only the steps it actually served
        if busy_occ[1] > 0:
            assert router.mean_batch_occupancy(1) >= busy_occ[1] * 0.5
        summary = router.summary()
        assert "mean_batch_occupancy_live" in summary
        assert summary["mean_batch_occupancy_live"] >= 0.0

    def test_dead_replica_excluded_from_live_mean(self):
        router = _router(n_replicas=2, seed=22)
        rng = np.random.default_rng(12)
        for _ in range(4):
            router.submit(synthetic_request(rng, N_HEADS, 10, HEAD_DIM, 6))
        router.run_until_drained()
        router.kill_replica(0)
        summary = router.summary()
        live = [r for r in summary["per_replica"] if r["status"] == "live"]
        expected = sum(r["mean_batch_occupancy"] for r in live) / len(live)
        assert summary["mean_batch_occupancy_live"] == pytest.approx(expected)
