"""Tests for the multi-replica cluster layer (router, memory, metrics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterRouter,
    ConservativeMemory,
    Histogram,
    MetricsRegistry,
    OptimisticMemory,
    bursty_trace,
    make_memory_manager,
)
from repro.core import TokenPickerConfig
from repro.core.session import TokenPickerSession
from repro.serving import (
    GenerationRequest,
    RequestState,
    ServingEngine,
    VictimCandidate,
    replayable_step_source,
    synthetic_request,
)

CFG = TokenPickerConfig(threshold=2e-3)


def _optimistic_engine(**kw):
    defaults = dict(
        max_batch_size=8,
        capacity_tokens=256,
        block_size=16,
        seed=0,
        memory_manager=OptimisticMemory(),
    )
    defaults.update(kw)
    return ServingEngine(CFG, **defaults)


def _replayable_request(rng, n_heads=2, prompt=40, head_dim=16, max_new=8):
    keys = rng.normal(size=(n_heads, prompt, head_dim))
    values = rng.normal(size=(n_heads, prompt, head_dim))
    source, stream = replayable_step_source(rng, n_heads, head_dim, max_new)
    request = GenerationRequest(
        prompt_keys=keys,
        prompt_values=values,
        max_new_tokens=max_new,
        step_source=source,
    )
    return request, stream


# --------------------------------------------------------------------- metrics
class TestMetrics:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("req", replica=0).inc()
        reg.counter("req", replica=0).inc(2)
        reg.counter("req", replica=1).inc()
        reg.gauge("depth", replica=0).set(7)
        assert reg.counter("req", replica=0).value == 3
        assert reg.counter("req", replica=1).value == 1
        assert reg.gauge("depth", replica=0).value == 7
        with pytest.raises(ValueError):
            reg.counter("req", replica=0).inc(-1)

    def test_name_bound_to_one_type(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_histogram_percentiles_close_to_exact(self):
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=-6.0, sigma=1.0, size=4000)
        hist = Histogram()
        for v in values:
            hist.observe(float(v))
        for q in (50, 95, 99):
            exact = float(np.percentile(values, q))
            approx = hist.percentile(q)
            assert abs(approx - exact) / exact < 0.08, (q, exact, approx)
        assert hist.count == 4000
        assert hist.min == values.min() and hist.max == values.max()

    def test_histogram_order_independent(self):
        values = [0.004, 0.001, 0.2, 0.0, 0.05, 0.001]
        a, b = Histogram(), Histogram()
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        assert a.summary() == b.summary()

    def test_empty_state_behaviour(self):
        """Empty metrics: counters read 0, histogram percentiles are nan
        (consistently — not 0.0, not an exception), summaries stay
        count-only."""
        import math

        from repro.cluster.metrics import Counter, Gauge

        assert Counter().value == 0.0
        assert Gauge().value == 0.0
        hist = Histogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        for q in (0.0, 50.0, 99.0, 100.0):
            assert math.isnan(hist.percentile(q))
        assert hist.summary() == {"count": 0}
        # bounds still validated on an empty histogram
        with pytest.raises(ValueError):
            hist.percentile(-0.1)
        # one observation flips every percentile to a real number
        hist.observe(0.25)
        assert hist.percentile(50.0) == 0.25

    def test_histogram_edge_cases(self):
        hist = Histogram()
        assert hist.summary() == {"count": 0}
        hist.observe(0.003)
        s = hist.summary()
        assert s["p50"] == s["p99"] == 0.003  # clamped to observed range
        hist.observe(0.01, n=3)
        assert hist.count == 4
        with pytest.raises(ValueError):
            hist.observe(-1.0)
        with pytest.raises(ValueError):
            hist.observe(1.0, n=0)
        with pytest.raises(ValueError):
            hist.percentile(101)

    def test_snapshot_and_render(self):
        reg = MetricsRegistry()
        reg.counter("done", replica=0).inc(5)
        reg.histogram("lat", replica=0).observe(0.01)
        snap = reg.snapshot()
        assert snap["done"][0]["value"] == 5
        assert snap["lat"][0]["summary"]["count"] == 1
        text = reg.render()
        assert "done{replica=0} 5" in text
        assert "lat{replica=0}" in text


# ---------------------------------------------------------------------- memory
class TestMemoryPolicy:
    def test_factory(self):
        assert make_memory_manager("conservative") is None
        assert isinstance(make_memory_manager("optimistic"), OptimisticMemory)
        with pytest.raises(ValueError):
            make_memory_manager("greedy")

    def test_footprints(self):
        rng = np.random.default_rng(0)
        request = synthetic_request(rng, 2, 32, 16, max_new_tokens=100)
        conservative = ConservativeMemory()
        optimistic = OptimisticMemory(margin_blocks=1, block_size=16)
        assert conservative.admission_tokens(request) == 132
        assert conservative.reserve_tokens(request) == 132
        assert optimistic.admission_tokens(request) == 48  # prompt + 1 block
        assert optimistic.reserve_tokens(request) == 32
        short = synthetic_request(rng, 2, 32, 16, max_new_tokens=2)
        assert optimistic.admission_tokens(short) == 34  # capped at lifetime

    def test_victim_selection_prefers_lowest_mass_then_lifo(self):
        def cand(seq_id, mass, admitted):
            return VictimCandidate(
                seq_id=seq_id,
                request_id=seq_id,
                retained_mass=mass,
                admitted_step=admitted,
                context_length=10,
                remaining_tokens=5,
            )

        policy = OptimisticMemory()
        assert policy.select_victim([]) is None
        picked = policy.select_victim(
            [cand(1, 0.9, 0), cand(2, 0.4, 1), cand(3, 0.7, 2)]
        )
        assert picked == 2  # lowest retained mass
        picked = policy.select_victim(
            [cand(1, 1.0, 0), cand(2, 1.0, 5), cand(3, 1.0, 5)]
        )
        assert picked == 3  # tie: latest admission, then higher seq id
        assert ConservativeMemory().select_victim([cand(1, 0.1, 0)]) is None


# ------------------------------------------------------- engine preempt/resume
class TestPreemption:
    def test_optimistic_preempts_and_drains(self):
        rng = np.random.default_rng(0)
        engine = _optimistic_engine()
        for _ in range(6):
            engine.submit(synthetic_request(rng, 2, 40, 16, max_new_tokens=30))
        reports = engine.run_until_drained()
        assert len(engine.completed) == 6
        assert engine.preemptions_total > 0
        assert engine.resumes_total == engine.preemptions_total
        assert engine.pool.blocks_in_use == 0
        assert engine.pool.swaps_out_total == engine.preemptions_total
        preempted = [r for r in reports if r.preempted]
        resumed = [r for r in reports if r.resumed]
        assert preempted and resumed
        stats = [c.stats for c in engine.completed]
        assert any(s.preemptions for s in stats)
        assert any(s.preempted_steps > 0 for s in stats)
        # every request ended FINISHED and with a sane retained-mass mean
        for s in stats:
            assert 0.0 <= s.mean_retained_mass <= 1.0
            assert s.retained_mass_steps == s.generated_tokens

    def test_request_state_lifecycle(self):
        rng = np.random.default_rng(1)
        engine = _optimistic_engine(max_batch_size=4, capacity_tokens=128)
        requests = [
            synthetic_request(rng, 2, 30, 16, max_new_tokens=25)
            for _ in range(4)
        ]
        for r in requests:
            engine.submit(r)
            assert r.state is RequestState.QUEUED
        engine.step()
        assert any(r.state is RequestState.RUNNING for r in requests)
        seen_preempted = False
        for _ in range(200):
            if not (engine.n_pending or engine.n_active or engine.n_preempted):
                break
            engine.step()
            seen_preempted = seen_preempted or any(
                r.state is RequestState.PREEMPTED for r in requests
            )
        assert seen_preempted
        assert all(r.state is RequestState.FINISHED for r in requests)

    def test_conservative_default_never_preempts(self):
        rng = np.random.default_rng(2)
        engine = ServingEngine(
            CFG, max_batch_size=8, capacity_tokens=256, block_size=16, seed=0
        )
        for _ in range(6):
            engine.submit(synthetic_request(rng, 2, 40, 16, max_new_tokens=30))
        engine.run_until_drained()
        assert engine.preemptions_total == 0
        assert len(engine.completed) == 6

    def test_preempt_resume_bit_identical_to_sessions(self):
        """Acceptance: preempted-and-resumed sequences reproduce, bit for
        bit, the pruning decisions, outputs and traffic of per-sequence
        sessions that never experienced memory pressure."""
        rng = np.random.default_rng(3)
        engine = _optimistic_engine(capacity_tokens=224)
        pairs = [
            _replayable_request(
                rng, prompt=int(rng.integers(24, 56)), max_new=12
            )
            for _ in range(5)
        ]
        for request, _ in pairs:
            engine.submit(request)
        per_request = {}
        for report in engine.run_until_drained():
            for sid, view in report.per_sequence.items():
                per_request.setdefault(view.request_id, []).append(
                    (report.results[sid].kept, report.results[sid].outputs)
                )
        assert engine.preemptions_total > 0, "pool never pressured; weak test"
        for request, stream in pairs:
            session = TokenPickerSession(CFG)
            session.observe_prompt(request.prompt_keys, request.prompt_values)
            keys, values = request.prompt_keys, request.prompt_values
            engine_steps = per_request[request.request_id]
            assert len(engine_steps) == len(stream)
            for (kept, outputs), (q, k, v) in zip(engine_steps, stream):
                keys = np.concatenate([keys, k[:, None, :]], axis=1)
                values = np.concatenate([values, v[:, None, :]], axis=1)
                result = session.step(q, keys, values)
                assert np.array_equal(kept, result.kept)
                assert np.array_equal(outputs, result.outputs)
            done = next(
                c
                for c in engine.completed
                if c.request_id == request.request_id
            )
            assert done.stats.counter.k_bits == session.counter.k_bits
            assert done.stats.counter.v_bits == session.counter.v_bits

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        capacity_blocks=st.integers(12, 20),
        max_new=st.integers(6, 20),
    )
    def test_preemption_property_zero_divergence(
        self, seed, capacity_blocks, max_new
    ):
        """Property: for any seed / pool size / decode length, optimistic
        admission (with whatever preemptions it triggers) keeps every
        sequence's kept-token decisions identical to a pressure-free
        conservative engine fed the same streams."""
        rng = np.random.default_rng(seed)
        pairs = [
            _replayable_request(
                rng, prompt=int(rng.integers(16, 48)), max_new=max_new
            )
            for _ in range(4)
        ]

        def kept_by_request(engine):
            out = {}
            for report in engine.run_until_drained():
                for sid, view in report.per_sequence.items():
                    out.setdefault(view.request_id, []).append(
                        report.results[sid].kept
                    )
            return out

        tight = _optimistic_engine(capacity_tokens=capacity_blocks * 16)
        roomy = ServingEngine(
            CFG, max_batch_size=8, capacity_tokens=8192, seed=0
        )
        id_map = {}
        for request, stream in pairs:
            tight_id = tight.submit(request)
            clone = GenerationRequest(
                prompt_keys=request.prompt_keys.copy(),
                prompt_values=request.prompt_values.copy(),
                max_new_tokens=request.max_new_tokens,
                step_source=request.step_source,
            )
            id_map[tight_id] = roomy.submit(clone)
        tight_kept = kept_by_request(tight)
        roomy_kept = kept_by_request(roomy)
        for tight_id, roomy_id in id_map.items():
            a, b = tight_kept[tight_id], roomy_kept[roomy_id]
            assert len(a) == len(b)
            for ka, kb in zip(a, b):
                assert np.array_equal(ka, kb)

    def test_optimistic_higher_occupancy_than_conservative(self):
        """Acceptance: on a bursty trace, optimistic admission sustains
        strictly higher mean batch occupancy than the conservative rule."""

        def run(admission):
            router = ClusterRouter(
                1,
                CFG,
                admission=admission,
                max_batch_size=8,
                capacity_tokens=320,
                block_size=16,
                seed=7,
            )
            trace = bursty_trace(
                np.random.default_rng(7),
                10,
                n_heads=2,
                head_dim=16,
                prompt_tokens=32,
                max_new_tokens=24,
                burst_size=5,
                gap_steps=2,
            )
            router.run_trace(trace)
            assert router.summary()["requests_completed"] == 10
            return router

        optimistic = run("optimistic")
        conservative = run("conservative")
        assert optimistic.summary()["preemptions"] > 0
        assert conservative.summary()["preemptions"] == 0
        assert (
            optimistic.mean_batch_occupancy(0)
            > conservative.mean_batch_occupancy(0)
        )


# ---------------------------------------------------------------------- router
class TestRouter:
    def test_round_robin_spreads_requests(self):
        rng = np.random.default_rng(0)
        router = ClusterRouter(
            3, CFG, policy="round-robin", max_batch_size=4,
            capacity_tokens=1024, seed=0,
        )
        placements = [
            router.submit(synthetic_request(rng, 2, 24, 16, 4))[0]
            for _ in range(6)
        ]
        assert placements == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_prefers_idle_replica(self):
        rng = np.random.default_rng(1)
        router = ClusterRouter(
            2, CFG, policy="least-loaded", max_batch_size=4,
            capacity_tokens=1024, seed=0,
        )
        first, _ = router.submit(synthetic_request(rng, 2, 64, 16, 8))
        second, _ = router.submit(synthetic_request(rng, 2, 24, 16, 4))
        assert first == 0 and second == 1  # backlog pushed it to the peer

    def test_degrade_level_shifts_placement_toward_degraded_replica(self):
        """Regression pin: the overload controller's degrade level raises
        a replica's advertised capacity, so a request that would go to
        the idle peer without feedback lands on the loaded-but-degraded
        replica instead (it prunes harder per token)."""
        def route_second(degrade_level):
            rng = np.random.default_rng(3)
            router = ClusterRouter(
                2, CFG, policy="least-loaded", max_batch_size=4,
                capacity_tokens=1024, seed=0,
            )
            router.submit(synthetic_request(rng, 2, 64, 16, 8))
            if degrade_level:
                router.note_degrade_level(degrade_level, replica_id=0)
            probe = synthetic_request(rng, 2, 24, 16, 4)
            return router.submit(probe)[0], router

        # without feedback, the backlog pushes the probe to replica 1:
        # cost0 = (72 + 28) x 1.0 = 100 vs cost1 = 28
        rid_plain, _ = route_second(0)
        assert rid_plain == 1
        # at level 6 replica 0 advertises 1 + 0.5 * 6 = 4x capacity, so
        # its discounted marginal cost (100 / 4 = 25) undercuts the
        # idle peer's 28 and the placement flips
        rid_degraded, router = route_second(6)
        assert rid_degraded == 0
        assert router.capacity_factor(0) == 4.0
        assert router.capacity_factor(1) == 1.0

    def test_degrade_level_fleet_wide_and_validation(self):
        router = ClusterRouter(2, CFG, capacity_tokens=512, seed=0)
        router.note_degrade_level(2)
        assert router.capacity_factor(0) == router.capacity_factor(1) == 2.0
        router.note_degrade_level(0)
        assert router.capacity_factor(0) == 1.0
        with pytest.raises(ValueError):
            router.note_degrade_level(-1)
        with pytest.raises(ValueError):
            router.note_degrade_level(1, replica_id=9)
        with pytest.raises(ValueError):
            ClusterRouter(1, CFG, degrade_capacity_boost=-0.1)

    def test_drain_rebalances_queued_requests(self):
        rng = np.random.default_rng(2)
        router = ClusterRouter(
            2, CFG, policy="round-robin", max_batch_size=2,
            capacity_tokens=2048, seed=0,
        )
        for _ in range(8):
            router.submit(synthetic_request(rng, 2, 24, 16, 4))
        assert router.replicas[0].n_pending == 4
        moved = router.drain(0)
        assert moved == 4
        assert router.replicas[0].n_pending == 0
        assert router.replicas[1].n_pending == 8
        assert router.routable() == [1]
        # draining the last routable replica is refused
        with pytest.raises(RuntimeError):
            router.drain(1)
        router.undrain(0)
        assert router.routable() == [0, 1]
        router.run_until_drained()
        assert router.summary()["requests_completed"] == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterRouter(0, CFG)
        with pytest.raises(ValueError):
            ClusterRouter(1, CFG, policy="random")
        with pytest.raises(ValueError):
            ClusterRouter(1, CFG, admission="bogus")
        router = ClusterRouter(1, CFG)
        with pytest.raises(ValueError):
            router.drain(5)

    def test_metrics_recorded_per_replica(self):
        router = ClusterRouter(
            2, CFG, max_batch_size=4, capacity_tokens=1024, seed=3
        )
        trace = bursty_trace(
            np.random.default_rng(3), 6, n_heads=2, head_dim=16,
            prompt_tokens=24, max_new_tokens=4, burst_size=3, gap_steps=1,
        )
        router.run_trace(trace)
        for rid in range(2):
            ttft = router.metrics.histogram("ttft_seconds", replica=rid)
            lat = router.metrics.histogram(
                "token_latency_seconds", replica=rid
            )
            assert ttft.count == len(router.replicas[rid].completed)
            assert lat.count == sum(
                c.stats.generated_tokens
                for c in router.replicas[rid].completed
            )
            for s in (ttft.summary(), lat.summary()):
                assert 0 < s["p50"] <= s["p95"] <= s["p99"]
            assert (
                router.metrics.counter("requests_completed", replica=rid).value
                == len(router.replicas[rid].completed)
            )

    def test_summary_deterministic_across_runs(self):
        """Same seed, same trace -> bit-identical cluster summaries."""

        def run():
            router = ClusterRouter(
                2,
                CFG,
                admission="optimistic",
                max_batch_size=4,
                capacity_tokens=384,
                seed=11,
            )
            trace = bursty_trace(
                np.random.default_rng(11), 8, n_heads=2, head_dim=16,
                prompt_tokens=32, max_new_tokens=10, burst_size=4,
                gap_steps=2,
            )
            router.run_trace(trace)
            return router.summary()

        assert run() == run()

    def test_timing_summary_included_on_request(self):
        router = ClusterRouter(1, CFG, max_batch_size=2, seed=0)
        rng = np.random.default_rng(0)
        router.submit(synthetic_request(rng, 2, 24, 16, 3))
        router.run_until_drained()
        assert "timing" not in router.summary()
        timed = router.summary(include_timing=True)
        assert "ttft_seconds" in timed["timing"]


# ------------------------------------------------------------ hw aggregation
class TestClusterHardwareModel:
    def test_step_from_cluster_aggregates(self):
        from repro.hw.serving import ServingSimulator
        from repro.model.config import get_model_config

        router = ClusterRouter(
            2, CFG, max_batch_size=4, capacity_tokens=1024, seed=5
        )
        rng = np.random.default_rng(5)
        for _ in range(8):
            router.submit(synthetic_request(rng, 4, 64, 16, 4))
        reports = router.run_until_drained()
        full = max(reports, key=lambda r: r.n_active)
        busy = [r for r in full.per_replica.values() if r.per_sequence]
        sim = ServingSimulator(get_model_config("gpt2-medium"), 64, config=CFG)
        result = sim.step_from_cluster(busy, engine_heads=4)
        assert result.n_replicas == len(busy)
        assert result.batch_size == sum(r.batch_size for r in busy)
        assert result.max_step_cycles == max(
            r.total_cycles for r in result.per_replica
        )
        assert result.aggregate_tokens_per_second() == pytest.approx(
            sum(
                r.batch_size / (r.total_cycles / 0.5e9)
                for r in result.per_replica
            )
        )
        with pytest.raises(ValueError):
            sim.step_from_cluster([])


# ------------------------------------------------------ mid-prefill preemption
class TestMidPrefillPreemption:
    def _kept_and_outputs(self, engine, max_steps=100_000):
        out = {}
        for report in engine.run_until_drained(max_steps):
            for sid, view in report.per_sequence.items():
                out.setdefault(view.request_id, []).append(
                    (report.results[sid].kept, report.results[sid].outputs)
                )
        return out

    def test_forced_preempt_half_ingested_prompt_resumes_bit_identical(self):
        """Preempt a sequence whose prompt is half-ingested, resume it,
        and require bit-identical output vs uninterrupted monolithic
        prefill."""
        rng = np.random.default_rng(50)
        request, stream = _replayable_request(rng, prompt=48, max_new=6)
        clone = GenerationRequest(
            prompt_keys=request.prompt_keys.copy(),
            prompt_values=request.prompt_values.copy(),
            max_new_tokens=request.max_new_tokens,
            step_source=request.step_source,
        )
        engine = _optimistic_engine(
            capacity_tokens=512, prefill_budget_tokens=16
        )
        rid = engine.submit(request)
        engine.step()  # 16 of 48 prompt tokens ingested
        (seq_id,) = [
            e.seq_id for e in engine._active.values() if e.prefilling
        ]
        assert engine.pool.length(seq_id) == 16
        engine.preempt(seq_id)
        assert request.state is RequestState.PREEMPTED
        assert engine.n_preempted == 1
        kept = self._kept_and_outputs(engine)
        assert request.state is RequestState.FINISHED
        stats = engine.completed[0].stats
        assert stats.preemptions == 1
        assert stats.prefill_chunks >= 3  # resumed mid-prompt, kept chunking

        roomy = ServingEngine(CFG, max_batch_size=8, capacity_tokens=8192)
        ref_id = roomy.submit(clone)
        ref = self._kept_and_outputs(roomy)
        assert len(kept[rid]) == len(ref[ref_id]) == 6
        for (ka, oa), (kb, ob) in zip(kept[rid], ref[ref_id]):
            assert np.array_equal(ka, kb)
            assert np.array_equal(oa, ob)

    def test_victim_policy_accounts_for_prefilling_candidates(self):
        from repro.serving import VictimCandidate

        def cand(seq_id, mass, admitted, prefilling=False):
            return VictimCandidate(
                seq_id=seq_id,
                request_id=seq_id,
                retained_mass=mass,
                admitted_step=admitted,
                context_length=10,
                remaining_tokens=5,
                prefilling=prefilling,
            )

        policy = OptimisticMemory()
        # equal mass: the mid-prefill candidate is preferred even though
        # an equally fresh decoding candidate exists
        picked = policy.select_victim(
            [cand(1, 1.0, 5), cand(2, 1.0, 5, prefilling=True), cand(3, 1.0, 5)]
        )
        assert picked == 2
        # decode evidence still dominates: lower retained mass wins
        picked = policy.select_victim(
            [cand(1, 0.2, 0), cand(2, 1.0, 5, prefilling=True)]
        )
        assert picked == 1

    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        capacity_blocks=st.integers(12, 20),
        budget=st.integers(8, 48),
    )
    def test_chunked_prefill_preemption_property_zero_divergence(
        self, seed, capacity_blocks, budget
    ):
        """Property: chunked prefill + optimistic preemption (including
        sequences preempted mid-prefill) never diverges from a roomy
        monolithic engine fed the same streams."""
        rng = np.random.default_rng(seed)
        pairs = [
            _replayable_request(
                rng, prompt=int(rng.integers(16, 48)), max_new=10
            )
            for _ in range(4)
        ]

        def kept_by_request(engine):
            out = {}
            for report in engine.run_until_drained():
                for sid, view in report.per_sequence.items():
                    out.setdefault(view.request_id, []).append(
                        report.results[sid].kept
                    )
            return out

        tight = _optimistic_engine(
            capacity_tokens=capacity_blocks * 16,
            prefill_budget_tokens=budget,
        )
        roomy = ServingEngine(
            CFG, max_batch_size=8, capacity_tokens=8192, seed=0
        )
        id_map = {}
        for request, _ in pairs:
            tight_id = tight.submit(request)
            clone = GenerationRequest(
                prompt_keys=request.prompt_keys.copy(),
                prompt_values=request.prompt_values.copy(),
                max_new_tokens=request.max_new_tokens,
                step_source=request.step_source,
            )
            id_map[tight_id] = roomy.submit(clone)
        tight_kept = kept_by_request(tight)
        roomy_kept = kept_by_request(roomy)
        for tight_id, roomy_id in id_map.items():
            a, b = tight_kept[tight_id], roomy_kept[roomy_id]
            assert len(a) == len(b)
            for ka, kb in zip(a, b):
                assert np.array_equal(ka, kb)


# ------------------------------------------------------------ zero-work edges
class TestZeroWorkEdges:
    def test_idle_cluster_drain_with_zero_steps_returns_empty(self):
        router = ClusterRouter(2, CFG)
        assert router.run_until_drained(max_steps=0) == []
        assert router.run_until_drained() == []

    def test_idle_engine_drain_with_zero_steps_returns_empty(self):
        engine = ServingEngine(CFG)
        assert engine.run_until_drained(max_steps=0) == []

    def test_zero_step_replica_summary_and_occupancy(self):
        """A replica that never stepped: occupancy 0.0, summary complete
        and JSON-serialisable (no inf kv_bit_reduction)."""
        import json

        router = ClusterRouter(2, CFG)
        assert router.mean_batch_occupancy(0) == 0.0
        assert router.mean_batch_occupancy(1) == 0.0
        summary = router.summary()
        json.dumps(summary, allow_nan=False)  # must not raise
        for rep in summary["per_replica"]:
            assert rep["kv_bit_reduction"] == 1.0
            assert rep["mean_batch_occupancy"] == 0.0
            assert rep["steps"] == 0

    def test_unknown_replica_id_is_a_value_error(self):
        router = ClusterRouter(2, CFG)
        with pytest.raises(ValueError, match="unknown replica"):
            router.mean_batch_occupancy(2)
        with pytest.raises(ValueError, match="unknown replica"):
            router.mean_batch_occupancy(-1)

    def test_one_busy_one_idle_replica_summary(self):
        """Mixed fleet: the idle replica's zero-traffic fields stay sane
        next to a busy peer's real numbers."""
        import json

        router = ClusterRouter(
            2, CFG, policy="round-robin", max_batch_size=4,
            capacity_tokens=1024, seed=0,
        )
        rng = np.random.default_rng(0)
        router.submit(synthetic_request(rng, 2, 24, 16, 3))  # replica 0
        router.run_until_drained()
        summary = router.summary()
        json.dumps(summary, allow_nan=False)
        busy, idle = summary["per_replica"]
        assert busy["requests_completed"] == 1
        assert busy["kv_bit_reduction"] > 1.0
        assert idle["requests_completed"] == 0
        assert idle["kv_bit_reduction"] == 1.0
        assert idle["mean_batch_occupancy"] == 0.0


class TestSplitLatencyHistograms:
    def test_queue_wait_and_prefill_histograms_recorded(self):
        """The TTFT histogram splits: queue wait + prefill are recorded
        per finished request from the split stamps, and TTFT still runs
        submit -> first decoded token."""
        router = ClusterRouter(
            1, CFG, max_batch_size=4, capacity_tokens=2048,
            prefill_budget_tokens=16, seed=3,
        )
        trace = bursty_trace(
            np.random.default_rng(3), 6, n_heads=2, head_dim=16,
            prompt_tokens=24, max_new_tokens=4, burst_size=3, gap_steps=1,
        )
        router.run_trace(trace)
        done = router.replicas[0].completed
        assert len(done) == 6
        ttft = router.metrics.histogram("ttft_seconds", replica=0)
        wait = router.metrics.histogram("queue_wait_seconds", replica=0)
        pre = router.metrics.histogram("prefill_seconds", replica=0)
        assert ttft.count == wait.count == pre.count == 6
        for c in done:
            assert c.stats.prefill_chunks >= 2  # 24-token prompts, 16/step
            assert c.stats.ttft_seconds == pytest.approx(
                c.stats.queue_wait_seconds + c.stats.prefill_seconds
            )
        assert (
            router.metrics.counter("prefill_tokens", replica=0).value
            == sum(c.stats.prompt_tokens for c in done)
        )
