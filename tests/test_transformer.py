"""Tests for the NumPy GPT: forward/backward, KV cache, generation."""

import numpy as np
import pytest

from repro.model.config import ModelConfig, tiny_config
from repro.model.transformer import KVCache, TinyGPT

MICRO = tiny_config(
    name="micro", n_layers=2, d_model=16, n_heads=2, vocab_size=13, max_context=24
)


@pytest.fixture(scope="module")
def model():
    return TinyGPT(MICRO, seed=3)


@pytest.fixture(scope="module")
def tokens():
    return np.random.default_rng(0).integers(0, 13, size=(2, 10))


class TestForward:
    def test_logit_shape(self, model, tokens):
        logits, _ = model.forward(tokens)
        assert logits.shape == (2, 10, 13)

    def test_causality(self, model, tokens):
        """Changing a future token must not affect earlier logits."""
        logits1, _ = model.forward(tokens)
        perturbed = tokens.copy()
        perturbed[:, -1] = (perturbed[:, -1] + 1) % 13
        logits2, _ = model.forward(perturbed)
        assert np.allclose(logits1[:, :-1], logits2[:, :-1])
        assert not np.allclose(logits1[:, -1], logits2[:, -1])

    def test_token_range_validated(self, model):
        with pytest.raises(ValueError):
            model.forward(np.array([[13]]))
        with pytest.raises(ValueError):
            model.forward(np.array([[-1]]))

    def test_context_limit(self, model):
        with pytest.raises(ValueError):
            model.forward(np.zeros((1, 25), dtype=int))

    def test_1d_rejected(self, model):
        with pytest.raises(ValueError):
            model.forward(np.zeros(5, dtype=int))

    def test_param_count_positive(self, model):
        assert model.n_params > 5_000


class TestGradients:
    """Full-model finite-difference checks on sampled coordinates."""

    @pytest.mark.parametrize(
        "pname",
        ["wte", "wpe", "l0.attn.wqkv", "l0.attn.wo", "l1.ffn.w1", "l1.ffn.b2",
         "l0.ln1.g", "lnf.b"],
    )
    def test_selected_parameter_grads(self, pname):
        # learned-positions config so 'wpe' exists; ALiBi covered below
        cfg = tiny_config(
            name="micro-learned", n_layers=2, d_model=16, n_heads=2,
            vocab_size=13, max_context=24,
        )
        cfg = ModelConfig(**{**cfg.__dict__, "position_scheme": "learned",
                             "learned_positions": True})
        model = TinyGPT(cfg, seed=5)
        toks = np.random.default_rng(1).integers(0, 13, size=(2, 6))
        _, grads = model.loss_and_grads(toks)
        p = model.params[pname]
        rng = np.random.default_rng(hash(pname) % 2**32)
        eps = 1e-6
        for _ in range(3):
            idx = tuple(rng.integers(0, s) for s in p.shape)
            orig = p[idx]
            p[idx] = orig + eps
            lp = model.loss(toks)
            p[idx] = orig - eps
            lm = model.loss(toks)
            p[idx] = orig
            numeric = (lp - lm) / (2 * eps)
            analytic = grads[pname][idx]
            assert numeric == pytest.approx(analytic, abs=1e-5, rel=1e-3)

    def test_grads_cover_all_params(self, model, tokens):
        _, grads = model.loss_and_grads(tokens)
        assert set(grads) == set(model.params)
        for name, g in grads.items():
            assert g.shape == model.params[name].shape
            assert np.all(np.isfinite(g))

    def test_alibi_model_grads(self):
        """Spot gradcheck on the ALiBi (default tiny) scheme."""
        model = TinyGPT(MICRO, seed=6)
        assert model.alibi is not None
        toks = np.random.default_rng(2).integers(0, 13, size=(2, 6))
        _, grads = model.loss_and_grads(toks)
        p = model.params["l0.attn.wqkv"]
        eps = 1e-6
        idx = (3, 5)
        orig = p[idx]
        p[idx] = orig + eps
        lp = model.loss(toks)
        p[idx] = orig - eps
        lm = model.loss(toks)
        p[idx] = orig
        numeric = (lp - lm) / (2 * eps)
        assert numeric == pytest.approx(grads["l0.attn.wqkv"][idx], abs=1e-5, rel=1e-3)


class TestKVCache:
    def test_incremental_matches_full(self, model):
        seq = np.random.default_rng(2).integers(0, 13, size=12)
        full, _ = model.forward(seq[None, :])
        incremental = model.sequence_logits(seq)
        assert np.allclose(full[0], incremental, atol=1e-10)

    def test_capacity_enforced(self, model):
        cache = model.new_cache(capacity=2)
        model.decode_step(1, cache)
        model.decode_step(2, cache)
        with pytest.raises(ValueError):
            model.decode_step(3, cache)

    def test_cache_shapes(self):
        cache = KVCache(n_layers=2, n_heads=3, head_dim=4, capacity=8)
        cache.append(0, np.ones((3, 4)), np.zeros((3, 4)))
        cache.append(1, np.ones((3, 4)), np.zeros((3, 4)))
        cache.advance()
        assert cache.keys(0).shape == (3, 1, 4)
        assert cache.length == 1

    def test_sequence_logits_validates_shape(self, model):
        with pytest.raises(ValueError):
            model.sequence_logits(np.zeros((2, 3), dtype=int))


class TestGeneration:
    def test_greedy_deterministic(self, model):
        prompt = np.array([1, 2, 3])
        a = model.generate(prompt, 5)
        b = model.generate(prompt, 5)
        assert np.array_equal(a, b)
        assert len(a) == 8
        assert np.array_equal(a[:3], prompt)

    def test_temperature_sampling_seeded(self, model):
        prompt = np.array([1, 2, 3])
        a = model.generate(prompt, 5, temperature=1.0, seed=4)
        b = model.generate(prompt, 5, temperature=1.0, seed=4)
        c = model.generate(prompt, 5, temperature=1.0, seed=5)
        assert np.array_equal(a, b)
        assert len(c) == 8

    def test_empty_prompt_rejected(self, model):
        with pytest.raises(ValueError):
            model.generate(np.array([], dtype=int), 3)

    def test_context_overflow_rejected(self, model):
        with pytest.raises(ValueError):
            model.generate(np.arange(5) % 13, 100)

    def test_custom_backend_used(self, model):
        calls = []

        def backend(layer, q, keys, values, bias=None):
            calls.append((layer, keys.shape[1]))
            return model.exact_backend(layer, q, keys, values, bias)

        out = model.generate(np.array([1, 2, 3]), 3, backend=backend)
        assert len(out) == 6
        # backend used only for generated positions (prompt is exact)
        assert all(t > 3 for _, t in calls)
        assert len(calls) == 2 * MICRO.n_layers  # n_new-1 steps decode


class TestModelConfigZoo:
    def test_zoo_entries_valid(self):
        from repro.model.config import MODEL_ZOO

        for name, cfg in MODEL_ZOO.items():
            assert cfg.head_dim * cfg.n_heads == cfg.d_model
            assert cfg.param_count > 0

    def test_param_counts_near_nameplates(self):
        """Parameter totals should match the models' advertised sizes."""
        from repro.model.config import get_model_config

        nameplates = {
            "gpt2-xl": 1.56e9,
            "opt-6.7b": 6.7e9,
            "opt-13b": 13e9,
            "llama-2-7b": 6.7e9,
            "llama-2-13b": 13e9,
        }
        for name, expected in nameplates.items():
            count = get_model_config(name).param_count
            assert abs(count - expected) / expected < 0.12, name

    def test_kv_bytes(self):
        from repro.model.config import get_model_config

        cfg = get_model_config("opt-6.7b")
        # 2 x 32 layers x 4096 dim x 2 bytes = 512 KiB per token
        assert cfg.kv_bytes_per_token() == 2 * 32 * 4096 * 2

    def test_unknown_model(self):
        from repro.model.config import get_model_config

        with pytest.raises(KeyError):
            get_model_config("gpt5")

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            ModelConfig(
                name="bad", n_layers=2, d_model=10, n_heads=3, vocab_size=5,
                max_context=8, ffn_hidden=16,
            )
