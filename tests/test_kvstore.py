"""Tests for the tiered KV store, demotion policies and radix prefix cache.

The load-bearing properties:

* **Tiering bit-identity** — with demotion/promotion active, every
  generated step's kept mask, probabilities and attention outputs are
  bit-equal to the untiered engine's (the promotion-on-sketch-survival
  repair loop at work).
* **Prefix-sharing bit-identity + refcounting** — N requests with a
  shared prompt prefix produce bit-identical outputs vs unshared runs,
  and refcounted extents free exactly when the last sharer finishes.
* **Byte-exact movement** — demote scrubs the arena beyond the sketch,
  promote restores the original encoded rows bit-for-bit, and swaps of
  partially-demoted sequences stay byte-exact.
"""

import numpy as np
import pytest

from repro.core import TokenPickerConfig
from repro.hw.dram import DRAMTierParams, TieredDRAMModel
from repro.kvstore import (
    LRUDemotionPolicy,
    MassDemotionPolicy,
    RadixKVCache,
    RecencyDemotionPolicy,
    TierConfig,
    TieredKVStore,
    make_demotion_policy,
    token_digests,
)
from repro.serving import ServingEngine, synthetic_request
from repro.workloads.traces import long_context_trace, shared_prefix_trace

CFG = TokenPickerConfig(threshold=2e-3)
N_HEADS, HEAD_DIM = 4, 32


def _drain_collecting(engine, requests_or_trace):
    """Submit everything, drain, and collect per-request step outputs."""
    for item in requests_or_trace:
        request = item[1] if isinstance(item, tuple) else item
        engine.submit(request)
    outputs = {}
    for report in engine.run_until_drained():
        for sid, result in report.results.items():
            rid = report.per_sequence[sid].request_id
            outputs.setdefault(rid, []).append(
                (
                    result.kept.copy(),
                    result.probs.copy(),
                    result.outputs.copy(),
                )
            )
    return outputs


def _assert_identical(a, b):
    assert set(a) == set(b)
    for rid in a:
        assert len(a[rid]) == len(b[rid])
        for (k1, p1, o1), (k2, p2, o2) in zip(a[rid], b[rid]):
            assert np.array_equal(k1, k2)
            assert np.array_equal(p1, p2)
            assert np.array_equal(o1, o2)


def _engine(tier=None, cache=None, batch=4, capacity=None, prompt=96, new=12):
    return ServingEngine(
        CFG,
        max_batch_size=batch,
        capacity_tokens=capacity or batch * (prompt + new + 32),
        seed=0,
        kv_tiering=tier,
        prefix_cache=cache,
    )


def _requests(n, prompt=96, new=12, seed=0):
    rng = np.random.default_rng(seed)
    return [
        synthetic_request(rng, N_HEADS, prompt, HEAD_DIM, new)
        for _ in range(n)
    ]


class TestTieredDRAMModel:
    def test_ledger_and_cycles(self):
        model = TieredDRAMModel()
        model.fast_read(1000)
        model.fast_write(24)
        model.slow_read(512)
        model.slow_write(100)
        assert model.fast_bytes == 1024
        assert model.slow_bytes == 612
        assert model.total_bytes == 1636
        # slow tier is slower per byte: same bytes, more cycles
        assert model.slow.cycles(4096) > model.fast.cycles(4096)
        # concurrent tiers: the step takes the slower stream
        assert model.step_cycles(4096, 4096) == model.slow.cycles(4096)
        model.reset()
        assert model.total_bytes == 0
        with pytest.raises(ValueError):
            model.fast_read(-1)

    def test_tier_params_validation(self):
        with pytest.raises(ValueError):
            DRAMTierParams(n_channels=0)
        with pytest.raises(ValueError):
            DRAMTierParams(latency_cycles=-1)


class TestPolicies:
    def _view(self, step=10):
        from repro.kvstore.policy import TokenTierView

        return TokenTierView(
            seq_id=0,
            length=6,
            mass=np.array([1e-6, 0.5, 1e-6, 0.2, 1e-6, 1.0]),
            last_kept=np.array([0, 9, 1, 10, 2, 10]),
            last_survived=np.array([0, 9, 1, 10, 2, 10]),
            seen=np.array([5, 5, 1, 5, 5, 5]),
        )

    def test_mass_policy_thresholds_with_evidence(self):
        policy = MassDemotionPolicy(threshold=1e-3, min_seen=2)
        view = self._view()
        eligible = np.arange(6)
        # position 2 has low mass but only one observation
        assert policy.demote_now(view, 10, eligible).tolist() == [0, 4]
        assert policy.rank(view, 10)[0] == pytest.approx(1e-6)

    def test_lru_policy_uses_kept_recency(self):
        policy = LRUDemotionPolicy(idle_steps=8)
        view = self._view()
        assert policy.demote_now(view, 10, np.arange(6)).tolist() == [0, 2, 4]

    def test_recency_policy_windows(self):
        policy = RecencyDemotionPolicy(window=2)
        view = self._view()
        assert policy.demote_now(view, 10, np.arange(6)).tolist() == [0, 1, 2, 3]

    def test_factory(self):
        assert make_demotion_policy("none").name == "none"
        assert make_demotion_policy("mass").name == "mass"
        assert make_demotion_policy("lru").name == "lru"
        assert make_demotion_policy("recency").name == "recency"
        with pytest.raises(ValueError):
            make_demotion_policy("fifo")
        with pytest.raises(ValueError):
            MassDemotionPolicy(threshold=-1.0)
        with pytest.raises(ValueError):
            LRUDemotionPolicy(idle_steps=0)
        with pytest.raises(ValueError):
            RecencyDemotionPolicy(window=0)


class TestTierConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TierConfig(hot_tail=0)
        with pytest.raises(ValueError):
            TierConfig(hot_budget_tokens=-1)
        with pytest.raises(ValueError):
            TierConfig(mass_decay=1.0)
        with pytest.raises(ValueError):
            TierConfig(sketch_chunks=0)
        with pytest.raises(ValueError):
            TierConfig(survive_idle_steps=0)

    def test_hot_tail_must_cover_prompt_guard(self):
        engine = ServingEngine(
            TokenPickerConfig(prompt_guard=8),
            capacity_tokens=256,
            kv_tiering=TierConfig(hot_tail=4),
        )
        with pytest.raises(ValueError, match="hot_tail"):
            engine.submit(_requests(1, prompt=32, new=2)[0])
            engine.step()

    def test_sketch_cannot_exceed_chunks(self):
        from repro.serving.kv_pool import KVCachePool

        pool = KVCachePool(N_HEADS, HEAD_DIM, capacity_tokens=64)
        with pytest.raises(ValueError, match="sketch_chunks"):
            TieredKVStore(pool, CFG.quant, TierConfig(sketch_chunks=99))


class TestDemotePromoteBytes:
    """Byte-exact movement on a store wired straight to a pool."""

    def _store(self, sketch=None):
        from repro.serving.kv_pool import KVCachePool

        pool = KVCachePool(
            N_HEADS,
            HEAD_DIM,
            capacity_tokens=256,
            k_heads=N_HEADS * CFG.quant.n_chunks,
        )
        cfg = TierConfig(policy="none", hot_tail=4, sketch_chunks=sketch)
        store = TieredKVStore(pool, CFG.quant, cfg)
        rng = np.random.default_rng(0)
        pool.register(7)
        k = rng.normal(size=(N_HEADS * CFG.quant.n_chunks, 32, HEAD_DIM))
        v = rng.normal(size=(N_HEADS, 32, HEAD_DIM))
        pool.append(7, k, v)
        store.register(7)
        store.note_append(7, 32, step=0)
        return store, pool

    def test_demote_scrubs_beyond_sketch_and_promote_restores(self):
        store, pool = self._store()
        offset, _ = pool.segment(7)
        original_k = pool.k_arena[offset:offset + 32].copy()
        original_v = pool.v_arena[offset:offset + 32].copy()
        n = store.demote(7, [0, 1, 2, 5])
        assert n == 4
        assert store.demoted_count(7) == 4
        assert store.hot_tokens(7) == 28
        rows = pool.k_arena[offset + np.array([0, 1, 2, 5])].reshape(
            4, N_HEADS, CFG.quant.n_chunks, HEAD_DIM
        )
        # sketch chunks intact, the rest scrubbed; V gone
        assert np.array_equal(
            rows[:, :, : store.sketch_chunks, :],
            original_k[[0, 1, 2, 5]].reshape(
                4, N_HEADS, CFG.quant.n_chunks, HEAD_DIM
            )[:, :, : store.sketch_chunks, :],
        )
        assert not rows[:, :, store.sketch_chunks:, :].any()
        assert not pool.v_arena[offset + np.array([0, 1, 2, 5])].any()
        # hot rows untouched
        assert np.array_equal(pool.k_arena[offset + 3], original_k[3])
        # promotion restores the exact bytes
        assert store.promote(7, [0, 1, 2, 5]) == 4
        assert np.array_equal(pool.k_arena[offset:offset + 32], original_k)
        assert np.array_equal(pool.v_arena[offset:offset + 32], original_v)
        # re-demotion reuses the immutable cold copy: no new slow write
        before = store.dram.slow_write_bytes
        store.demote(7, [0, 1])
        assert store.dram.slow_write_bytes == before

    def test_demote_guards_hot_tail_and_bounds(self):
        store, _ = self._store()
        with pytest.raises(ValueError, match="hot tail"):
            store.demote(7, [30])
        with pytest.raises(ValueError):
            store.demote(7, [-1])
        assert store.demote(7, []) == 0
        # double demotion is a no-op
        assert store.demote(7, [4]) == 1
        assert store.demote(7, [4]) == 0

    def test_swap_roundtrip_of_partially_demoted_sequence(self):
        store, pool = self._store()
        offset, _ = pool.segment(7)
        original_k = pool.k_arena[offset:offset + 32].copy()
        original_v = pool.v_arena[offset:offset + 32].copy()
        store.demote(7, np.arange(0, 16))
        swapped = store.on_swap_out(7, pool.swap_out(7))
        # the swap image is byte-exact despite the scrubbed arena rows
        assert np.array_equal(swapped.k_rows, original_k)
        assert np.array_equal(swapped.v_rows, original_v)
        assert store.swap_rows_skipped_total == 16
        pool.swap_in(7, swapped)
        store.on_swap_in(7)
        offset, _ = pool.segment(7)
        # hot suffix restored exactly; demoted prefix scrubbed again
        assert np.array_equal(
            pool.k_arena[offset + 16:offset + 32], original_k[16:]
        )
        assert not pool.v_arena[offset:offset + 16].any()
        assert store.demoted_count(7) == 16
        assert store.promote(7, np.arange(0, 16)) == 16
        assert np.array_equal(pool.k_arena[offset:offset + 32], original_k)
        assert np.array_equal(pool.v_arena[offset:offset + 32], original_v)


class TestTieredEngineBitIdentity:
    """Acceptance: tiered outputs are bit-identical to untiered ones."""

    @staticmethod
    def _trace():
        # regenerate from the same seed per engine: requests are stateful
        # once submitted
        return [
            r
            for _, r in long_context_trace(
                np.random.default_rng(3), 4, n_heads=N_HEADS,
                head_dim=HEAD_DIM, prompt_tokens=128, max_new_tokens=12,
            )
        ]

    @pytest.mark.parametrize(
        "tier",
        [
            TierConfig(policy="mass", mass_threshold=2e-3, hot_tail=8),
            TierConfig(policy="lru", lru_idle_steps=3, hot_tail=8),
            TierConfig(
                policy="recency", recency_window=16, hot_tail=8,
                survive_idle_steps=1,
            ),
        ],
        ids=["mass", "lru", "recency"],
    )
    def test_policy_outputs_bit_identical(self, tier):
        baseline = _drain_collecting(_engine(prompt=128), self._trace())
        engine = _engine(tier, prompt=128)
        tiered = _drain_collecting(engine, self._trace())
        _assert_identical(baseline, tiered)
        assert engine.tiers.demotions_total > 0

    def test_promotion_rerun_path_exercised(self):
        """An aggressive recency window forces sketch-survivor promotions
        and kernel re-runs — and outputs still match bit for bit."""
        tier = TierConfig(
            policy="recency", recency_window=4, hot_tail=4,
            survive_idle_steps=1,
        )
        baseline = _drain_collecting(_engine(), _requests(4))
        engine = _engine(tier)
        tiered = _drain_collecting(engine, _requests(4))
        _assert_identical(baseline, tiered)
        assert engine.tiers.promotions_total > 0
        assert engine.tiers.rerun_steps_total > 0

    def test_hot_budget_enforced(self):
        tier = TierConfig(
            policy="mass", mass_threshold=1.1, hot_tail=8,
            hot_budget_tokens=200, survive_idle_steps=1,
        )
        engine = _engine(tier, prompt=96, new=8)
        baseline = _drain_collecting(_engine(prompt=96, new=8), _requests(4, new=8))
        tiered = _drain_collecting(engine, _requests(4, new=8))
        _assert_identical(baseline, tiered)
        assert engine.tiers.demotions_total > 0

    def test_tiered_preemption_stays_bit_identical(self):
        """Optimistic admission + tiering: preempted-and-resumed demoted
        sequences still produce untiered bits."""
        from repro.cluster.memory import make_memory_manager

        def build(tier):
            return ServingEngine(
                CFG,
                max_batch_size=4,
                capacity_tokens=4 * 72,
                block_size=8,
                seed=0,
                memory_manager=make_memory_manager(
                    "tiered" if tier else "optimistic", block_size=8
                ),
                kv_tiering=tier,
            )

        requests = _requests(8, prompt=48, new=24, seed=5)
        untiered_engine = build(None)
        baseline = _drain_collecting(untiered_engine, requests)
        tier = TierConfig(policy="mass", mass_threshold=2e-3, hot_tail=8)
        engine = build(tier)
        tiered = _drain_collecting(
            engine, _requests(8, prompt=48, new=24, seed=5)
        )
        assert untiered_engine.preemptions_total > 0
        _assert_identical(baseline, tiered)

    def test_step_views_carry_tier_split(self):
        tier = TierConfig(policy="mass", mass_threshold=2e-3, hot_tail=8)
        engine = _engine(tier, prompt=128)
        for request in _requests(2, prompt=128):
            engine.submit(request)
        saw_slow = False
        while engine.n_pending or engine.n_active:
            report = engine.step()
            for view in report.per_sequence.values():
                assert view.fast_bits >= 0 and view.slow_bits >= 0
                assert (
                    view.fast_bits + view.slow_bits
                    == view.stats.total_bits_fetched
                )
                saw_slow = saw_slow or view.slow_bits > 0
        assert saw_slow

    def test_step_from_tiered_pricing(self):
        from repro.hw.serving import ServingSimulator
        from repro.model.config import get_model_config

        tier = TierConfig(policy="mass", mass_threshold=2e-3, hot_tail=8)
        engine = _engine(tier, prompt=128)
        for request in _requests(3, prompt=128):
            engine.submit(request)
        reports = engine.run_until_drained()
        # the step with the most demoted traffic (early steps have no
        # demotions yet: the policy needs evidence)
        full = max(
            reports,
            key=lambda r: sum(v.slow_bits for v in r.per_sequence.values()),
        )
        sim = ServingSimulator(
            get_model_config("gpt2-medium"), context_length=128, config=CFG
        )
        tiered = sim.step_from_tiered(full, engine_heads=N_HEADS)
        plain = sim.step_from_engine(full, engine_heads=N_HEADS)
        assert tiered.batch_size == plain.batch_size
        # the fast stream shrank: fewer fast cycles than the all-fast step
        assert tiered.fast_attention_cycles < plain.attention_cycles
        assert tiered.total_cycles == tiered.weight_cycles + max(
            tiered.fast_attention_cycles, tiered.slow_attention_cycles
        )


class TestRadixCache:
    def _prompt(self, rng, t=12):
        return (
            rng.normal(size=(N_HEADS, t, HEAD_DIM)),
            rng.normal(size=(N_HEADS, t, HEAD_DIM)),
        )

    def test_chained_digests_detect_prefixes(self):
        rng = np.random.default_rng(0)
        k, v = self._prompt(rng)
        d1 = token_digests(k, v)
        d2 = token_digests(k.copy(), v.copy())
        assert d1 == d2
        k2 = k.copy()
        k2[:, 6, :] += 1.0
        d3 = token_digests(k2, v)
        assert d3[:6] == d1[:6]
        assert all(a != b for a, b in zip(d3[6:], d1[6:]))

    def test_acquire_hit_miss_and_split(self):
        rng = np.random.default_rng(1)
        cache = RadixKVCache()
        k, v = self._prompt(rng, 16)
        h1 = cache.acquire(k, v)
        assert h1.hit_tokens == 0 and h1.miss_tokens == 16
        # identical prompt: full hit
        h2 = cache.acquire(k, v)
        assert h2.hit_tokens == 16
        assert cache.total_tokens == 16
        # shared 10-token prefix, divergent suffix: split at the fork
        k3, v3 = k.copy(), v.copy()
        k3[:, 10:, :] = rng.normal(size=(N_HEADS, 6, HEAD_DIM))
        h3 = cache.acquire(k3, v3)
        assert h3.hit_tokens == 10
        assert cache.splits_total == 1
        assert cache.total_tokens == 16 + 6
        assert cache.hit_rate == pytest.approx((16 + 10) / 48)
        # the split preserved the stored rows bit-for-bit
        assert cache.match_length(k, v) == 16
        assert cache.match_length(k3, v3) == 16

    def test_release_frees_exactly_at_last_sharer(self):
        rng = np.random.default_rng(2)
        cache = RadixKVCache(retain_unreferenced=False)
        k, v = self._prompt(rng, 8)
        h1 = cache.acquire(k, v)
        h2 = cache.acquire(k, v)
        assert cache.total_tokens == 8
        assert cache.release(h1) == 0  # one sharer still holds the extent
        assert cache.total_tokens == 8
        assert cache.release(h2) == 8  # last sharer: freed exactly now
        assert cache.total_tokens == 0
        with pytest.raises(ValueError):
            cache.release(h2)

    def test_retained_cache_survives_release_and_evicts(self):
        rng = np.random.default_rng(3)
        cache = RadixKVCache()  # retain_unreferenced=True
        k, v = self._prompt(rng, 8)
        handle = cache.acquire(k, v)
        cache.release(handle)
        assert cache.total_tokens == 8  # still resident for future hits
        h2 = cache.acquire(k, v)
        assert h2.hit_tokens == 8
        cache.release(h2)
        assert cache.evict_unreferenced() == 8
        assert cache.total_tokens == 0

    def test_capacity_budget_auto_evicts_lru(self):
        rng = np.random.default_rng(5)
        cache = RadixKVCache(capacity_tokens=16)
        k1, v1 = self._prompt(rng, 8)
        k2, v2 = self._prompt(rng, 8)
        k3, v3 = self._prompt(rng, 8)
        cache.release(cache.acquire(k1, v1))
        cache.release(cache.acquire(k2, v2))
        assert cache.total_tokens == 16
        # a third prompt pushes past the budget: the oldest-use extent
        # (prompt 1) is evicted on acquire, the still-referenced newest
        # never is
        h3 = cache.acquire(k3, v3)
        assert cache.total_tokens == 16
        assert cache.match_length(k1, v1) == 0
        assert cache.match_length(k2, v2) == 8
        cache.release(h3)
        with pytest.raises(ValueError):
            RadixKVCache(capacity_tokens=-1)

    def test_match_length_is_a_pure_probe(self):
        rng = np.random.default_rng(6)
        cache = RadixKVCache(capacity_tokens=16)
        k1, v1 = self._prompt(rng, 8)
        k2, v2 = self._prompt(rng, 8)
        cache.release(cache.acquire(k1, v1))
        cache.release(cache.acquire(k2, v2))
        # probing the older extent must not refresh its LRU stamp
        assert cache.match_length(k1, v1) == 8
        k3, v3 = self._prompt(rng, 8)
        cache.release(cache.acquire(k3, v3))
        assert cache.match_length(k1, v1) == 0  # still the eviction victim
        assert cache.match_length(k2, v2) == 8

    def test_eviction_spares_referenced_extents(self):
        rng = np.random.default_rng(4)
        cache = RadixKVCache()
        k, v = self._prompt(rng, 8)
        handle = cache.acquire(k, v)
        assert cache.evict_unreferenced() == 0
        assert cache.total_tokens == 8
        cache.release(handle)


class TestPrefixSharingProperty:
    """Acceptance: shared-prefix serving is bit-identical to unshared."""

    def _trace(self, seed=0):
        return shared_prefix_trace(
            np.random.default_rng(seed),
            6,
            n_heads=N_HEADS,
            head_dim=HEAD_DIM,
            prefix_tokens=48,
            suffix_tokens=16,
            max_new_tokens=8,
            n_groups=2,
        )

    def test_outputs_bit_identical_and_hit_rate(self):
        baseline = _drain_collecting(
            _engine(prompt=64, new=8), self._trace()
        )
        cache = RadixKVCache()
        engine = _engine(cache=cache, prompt=64, new=8)
        shared = _drain_collecting(engine, self._trace())
        _assert_identical(baseline, shared)
        # 6 requests in 2 groups of 3: 2/3 of all prefix tokens hit
        assert cache.hit_rate >= 0.5
        hits = [c.stats.prefix_hit_tokens for c in engine.completed]
        assert sorted(hits)[:2] == [0, 0] and sorted(hits)[2] == 48

    def test_extents_free_exactly_when_last_sharer_finishes(self):
        cache = RadixKVCache(retain_unreferenced=False)
        engine = _engine(cache=cache, batch=6, prompt=64, new=8)
        for _, request in self._trace():
            engine.submit(request)
        resident_during = 0
        while engine.n_pending or engine.n_active:
            engine.step()
            if engine.n_active:
                resident_during = max(resident_during, cache.total_tokens)
        # while sharers run, the two prefixes are stored once each plus
        # private suffixes; after the last retires, everything is freed
        assert resident_during > 0
        assert cache.total_tokens == 0
        assert cache.freed_tokens_total == cache.inserted_tokens_total

    def test_tiering_and_prefix_cache_compose(self):
        tier = TierConfig(policy="mass", mass_threshold=2e-3, hot_tail=8)
        baseline = _drain_collecting(_engine(prompt=64, new=8), self._trace())
        cache = RadixKVCache()
        engine = _engine(tier, cache, prompt=64, new=8)
        combined = _drain_collecting(engine, self._trace())
        _assert_identical(baseline, combined)
        assert cache.hit_rate >= 0.5
        # cache hits skipped their cold ingest in the ledger: a hit
        # charges a slow read instead of a slow write
        assert engine.tiers.dram.slow_read_bytes > 0
