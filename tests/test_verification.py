"""Tests for the independent certificate verifier."""

import numpy as np
import pytest

from repro.core import TokenPickerConfig, token_picker_attention, token_picker_scores
from repro.core.verification import (
    CertificateViolation,
    VerificationReport,
    verify_result,
)


def _instance(seed=0, t=96, d=32):
    rng = np.random.default_rng(seed)
    keys = rng.normal(size=(t, d))
    q = keys[5] * 2 + keys[-1] + 0.3 * rng.normal(size=d)
    return q, keys


class TestVerifyHonestResults:
    @pytest.mark.parametrize("schedule", ["breadth", "depth"])
    def test_genuine_results_pass(self, schedule):
        q, keys = _instance()
        cfg = TokenPickerConfig(threshold=1e-3, schedule=schedule)
        r = token_picker_scores(q, keys, cfg)
        report = verify_result(q, keys, cfg, r)
        assert report.ok
        assert report.max_pruned_probability <= cfg.threshold + 1e-9

    def test_with_bias(self):
        q, keys = _instance(1)
        bias = -0.05 * np.arange(keys.shape[0])[::-1].astype(float)
        cfg = TokenPickerConfig(threshold=1e-3)
        r = token_picker_scores(q, keys, cfg, score_bias=bias)
        assert verify_result(q, keys, cfg, r, score_bias=bias).ok

    def test_full_attention_result(self):
        q, keys = _instance(2)
        rng = np.random.default_rng(3)
        values = rng.normal(size=keys.shape)
        cfg = TokenPickerConfig(threshold=1e-3)
        r = token_picker_attention(q, keys, values, cfg)
        assert verify_result(q, keys, cfg, r).ok


class TestVerifyTamperedResults:
    """Failure injection: corrupt each invariant and expect detection."""

    def _result(self, seed=4):
        q, keys = _instance(seed)
        cfg = TokenPickerConfig(threshold=1e-3)
        return q, keys, cfg, token_picker_scores(q, keys, cfg)

    def test_detects_bad_chunk_count(self):
        q, keys, cfg, r = self._result()
        r.chunks_fetched[0] = 0
        with pytest.raises(CertificateViolation, match="chunk counts"):
            verify_result(q, keys, cfg, r)

    def test_detects_kept_without_all_chunks(self):
        q, keys, cfg, r = self._result()
        kept_idx = int(np.flatnonzero(r.kept)[0])
        r.chunks_fetched[kept_idx] = 1
        with pytest.raises(CertificateViolation, match="did not fetch"):
            verify_result(q, keys, cfg, r)

    def test_detects_score_tampering(self):
        q, keys, cfg, r = self._result()
        r.scores[3] += 0.5
        with pytest.raises(CertificateViolation, match="scores"):
            verify_result(q, keys, cfg, r)

    def test_detects_unsafe_pruning(self):
        q, keys, cfg, r = self._result()
        # prune the most dominant token
        top = int(np.argmax(r.scores))
        r.kept[top] = False
        r.probs = np.zeros_like(r.probs)
        if r.kept.any():
            s = r.scores[r.kept]
            e = np.exp(s - s.max())
            r.probs[r.kept] = e / e.sum()
        with pytest.raises(CertificateViolation, match="above threshold"):
            verify_result(q, keys, cfg, r)

    def test_detects_bad_probabilities(self):
        q, keys, cfg, r = self._result()
        r.probs = r.probs * 0.5
        with pytest.raises(CertificateViolation, match="softmax|sum"):
            verify_result(q, keys, cfg, r)

    def test_report_without_raise(self):
        q, keys, cfg, r = self._result()
        r.scores[3] += 0.5
        report = verify_result(q, keys, cfg, r, raise_on_violation=False)
        assert not report.ok
        assert any("scores" in v for v in report.violations)


class TestReport:
    def test_report_fields(self):
        q, keys = _instance(7)
        cfg = TokenPickerConfig(threshold=1e-2)
        r = token_picker_scores(q, keys, cfg)
        report = verify_result(q, keys, cfg, r)
        assert report.n_tokens == keys.shape[0]
        assert report.n_checked_invariants == 5
        assert report.threshold == cfg.threshold
