"""Gradient-correctness tests for the NN primitives (finite differences)."""

import numpy as np
import pytest

from repro.model.layers import (
    adam_update,
    cross_entropy_backward,
    cross_entropy_forward,
    gelu_backward,
    gelu_forward,
    layernorm_backward,
    layernorm_forward,
    linear_backward,
    linear_forward,
    softmax_backward,
    softmax_forward,
)

RNG = np.random.default_rng(0)
EPS = 1e-6


def numeric_grad(f, x, eps=EPS):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        g[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


class TestLinear:
    def test_forward(self):
        x = np.array([[1.0, 2.0]])
        w = np.array([[1.0, 0.0], [0.0, 1.0]])
        b = np.array([0.5, -0.5])
        y, _ = linear_forward(x, w, b)
        assert np.allclose(y, [[1.5, 1.5]])

    def test_gradients(self):
        x = RNG.normal(size=(3, 4))
        w = RNG.normal(size=(4, 5))
        b = RNG.normal(size=5)
        dy = RNG.normal(size=(3, 5))

        def loss():
            return float((linear_forward(x, w, b)[0] * dy).sum())

        _, cache = linear_forward(x, w, b)
        dx, dw, db = linear_backward(dy, cache)
        assert np.allclose(dx, numeric_grad(loss, x), atol=1e-5)
        assert np.allclose(dw, numeric_grad(loss, w), atol=1e-5)
        assert np.allclose(db, numeric_grad(loss, b), atol=1e-5)

    def test_batched_3d_input(self):
        x = RNG.normal(size=(2, 3, 4))
        w = RNG.normal(size=(4, 5))
        b = np.zeros(5)
        y, cache = linear_forward(x, w, b)
        assert y.shape == (2, 3, 5)
        dx, dw, db = linear_backward(np.ones_like(y), cache)
        assert dx.shape == x.shape and dw.shape == w.shape


class TestLayerNorm:
    def test_output_normalised(self):
        x = RNG.normal(size=(4, 8)) * 3 + 1
        y, _ = layernorm_forward(x, np.ones(8), np.zeros(8))
        assert np.allclose(y.mean(axis=-1), 0.0, atol=1e-9)
        assert np.allclose(y.std(axis=-1), 1.0, atol=1e-3)

    def test_gradients(self):
        x = RNG.normal(size=(2, 6))
        g = RNG.normal(size=6)
        b = RNG.normal(size=6)
        dy = RNG.normal(size=(2, 6))

        def loss():
            return float((layernorm_forward(x, g, b)[0] * dy).sum())

        _, cache = layernorm_forward(x, g, b)
        dx, dg, db = layernorm_backward(dy, cache)
        assert np.allclose(dx, numeric_grad(loss, x), atol=1e-5)
        assert np.allclose(dg, numeric_grad(loss, g), atol=1e-5)
        assert np.allclose(db, numeric_grad(loss, b), atol=1e-5)


class TestGelu:
    def test_values(self):
        y, _ = gelu_forward(np.array([0.0]))
        assert np.isclose(y[0], 0.0)
        y, _ = gelu_forward(np.array([10.0]))
        assert np.isclose(y[0], 10.0, atol=1e-3)
        y, _ = gelu_forward(np.array([-10.0]))
        assert np.isclose(y[0], 0.0, atol=1e-3)

    def test_gradient(self):
        x = RNG.normal(size=12)
        dy = RNG.normal(size=12)

        def loss():
            return float((gelu_forward(x)[0] * dy).sum())

        _, cache = gelu_forward(x)
        dx = gelu_backward(dy, cache)
        assert np.allclose(dx, numeric_grad(loss, x), atol=1e-5)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        p, _ = softmax_forward(RNG.normal(size=(3, 7)) * 5)
        assert np.allclose(p.sum(axis=-1), 1.0)

    def test_gradient(self):
        x = RNG.normal(size=(2, 5))
        dy = RNG.normal(size=(2, 5))

        def loss():
            return float((softmax_forward(x)[0] * dy).sum())

        p, cache = softmax_forward(x)
        dx = softmax_backward(dy, cache)
        assert np.allclose(dx, numeric_grad(loss, x), atol=1e-5)

    def test_stability_with_large_inputs(self):
        p, _ = softmax_forward(np.array([1000.0, 1000.0]))
        assert np.allclose(p, 0.5)


class TestCrossEntropy:
    def test_uniform_loss(self):
        logits = np.zeros((1, 4, 8))
        targets = np.array([[1, 2, 3, 4]])
        loss, _ = cross_entropy_forward(logits, targets)
        assert np.isclose(loss, np.log(8))

    def test_ignores_negative_targets(self):
        logits = RNG.normal(size=(1, 4, 8))
        t_all = np.array([[1, 2, 3, 4]])
        t_masked = np.array([[1, 2, -1, -1]])
        loss_all, _ = cross_entropy_forward(logits, t_all)
        loss_masked, _ = cross_entropy_forward(logits, t_masked)
        assert loss_all != pytest.approx(loss_masked)

    def test_all_masked_rejected(self):
        with pytest.raises(ValueError):
            cross_entropy_forward(np.zeros((1, 2, 4)), np.array([[-1, -1]]))

    def test_gradient(self):
        logits = RNG.normal(size=(2, 3, 6))
        targets = RNG.integers(0, 6, size=(2, 3))

        def loss():
            return cross_entropy_forward(logits, targets)[0]

        _, cache = cross_entropy_forward(logits, targets)
        dl = cross_entropy_backward(cache)
        assert np.allclose(dl, numeric_grad(loss, logits), atol=1e-5)

    def test_gradient_sums_to_zero_per_position(self):
        logits = RNG.normal(size=(1, 2, 5))
        targets = np.array([[1, 3]])
        _, cache = cross_entropy_forward(logits, targets)
        dl = cross_entropy_backward(cache)
        assert np.allclose(dl.sum(axis=-1), 0.0, atol=1e-12)


class TestAdam:
    def test_moves_toward_minimum(self):
        params = {"w": np.array([5.0])}
        state = {}
        for step in range(1, 200):
            grads = {"w": 2 * params["w"]}  # d/dw w^2
            adam_update(params, grads, state, lr=0.1, step=step)
        assert abs(params["w"][0]) < 0.2

    def test_weight_decay_only_on_matrices(self):
        params = {"w": np.ones((2, 2)), "b": np.ones(2)}
        state = {}
        grads = {"w": np.zeros((2, 2)), "b": np.zeros(2)}
        adam_update(params, grads, state, lr=0.1, step=1, weight_decay=0.1)
        assert np.all(params["w"] < 1.0)  # decayed
        assert np.all(params["b"] == 1.0)  # biases untouched

    def test_step_counter_validated(self):
        with pytest.raises(ValueError):
            adam_update({}, {}, {}, lr=0.1, step=0)
