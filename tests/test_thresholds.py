"""Tests for threshold calibration."""

import numpy as np
import pytest

from repro.core.thresholds import CalibrationResult, calibrate_presets, calibrate_threshold


class TestCalibrateThreshold:
    def test_monotone_metric(self):
        # metric = 10 * thr (monotone); budget 0.3 -> thr 0.03
        res = calibrate_threshold(lambda t: 10 * t, budget=0.3, iterations=30)
        assert res.within_budget
        assert np.isclose(res.threshold, 0.03, rtol=0.01)

    def test_budget_never_reachable(self):
        res = calibrate_threshold(lambda t: 1.0, budget=0.1)
        assert not res.within_budget
        assert res.threshold == 1e-6

    def test_high_always_feasible(self):
        res = calibrate_threshold(lambda t: 0.0, budget=0.1, high=0.05)
        assert res.within_budget
        assert res.threshold == 0.05
        assert res.evaluations == 2  # early exit

    def test_history_recorded(self):
        res = calibrate_threshold(lambda t: 10 * t, budget=0.3, iterations=5)
        assert len(res.history) == res.evaluations
        assert all(len(pair) == 2 for pair in res.history)

    def test_step_metric(self):
        # metric jumps at thr = 1e-3
        metric = lambda t: 0.0 if t <= 1e-3 else 1.0
        res = calibrate_threshold(metric, budget=0.5, iterations=25)
        assert res.within_budget
        assert 5e-4 <= res.threshold <= 1e-3

    def test_invalid_bracket(self):
        with pytest.raises(ValueError):
            calibrate_threshold(lambda t: t, budget=1.0, low=0.1, high=0.01)
        with pytest.raises(ValueError):
            calibrate_threshold(lambda t: t, budget=1.0, iterations=0)

    def test_noisy_metric_keeps_best_feasible(self):
        rng = np.random.default_rng(0)
        metric = lambda t: 10 * t + rng.normal() * 0.01
        res = calibrate_threshold(metric, budget=0.3, iterations=15, monotone_slack=0.05)
        assert res.threshold > 1e-6


class TestPresets:
    def test_all_presets_calibrated(self):
        results = calibrate_presets(lambda t: 3 * t, iterations=20)
        assert set(results) == {"topick", "topick-0.3", "topick-0.5"}
        # larger budget -> larger threshold
        assert results["topick"].threshold <= results["topick-0.3"].threshold
        assert results["topick-0.3"].threshold <= results["topick-0.5"].threshold

    def test_custom_budgets(self):
        results = calibrate_presets(lambda t: t, budgets={"a": 0.01}, iterations=10)
        assert set(results) == {"a"}
