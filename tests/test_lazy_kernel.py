"""Lazy alive-set score kernel: bit-identity with the eager reference.

The lazy pipeline (``score_backend="numpy"``/``"numba"``) fetches chunk 0
for every token and later chunks only for undecided (head, token) pairs,
switching between dense full-width rounds and compacted pair gathers as
the alive set thins.  Its contract against the eager full-table kernel:

* kept sets, chunks fetched, probabilities, outputs and log
  denominators are **bit-identical** (``array_equal``) — pruning
  decisions never move;
* kept tokens' reported scores are the exact full-depth values;
* a pruned token's reported score is its certified upper bound at the
  round that pruned it (``p'' >= p``, Eq. 5) — its remaining chunks
  were never fetched, which is the whole point;
* ``round_alive`` (pairs entering each round) matches between paths
  and is monotone non-increasing.

Property-swept across arena dtypes (float32 / float64 / the int64
wide-format fallback), quant formats straddling the 52-bit float64
exactness limit, prompt-guard edges, biases and thresholds; plus
engine-level identity under preemption and tiered promotion re-runs.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    QuantConfig,
    TokenPickerConfig,
    token_picker_attention_batched,
    token_picker_attention_ragged,
)
from repro.core.pruning import KernelScratch
from repro.kvstore import TierConfig
from repro.serving import ServingEngine, synthetic_request
from test_kvstore import _assert_identical as _assert_drains_identical
from test_kvstore import _drain_collecting
from test_ragged_kernel import _build_arena, _make_batch

#: (quant format, arena dtype) — float32 for the paper's 12-bit format,
#: float64 for formats exact under the 52-bit gate
#: (2*total_bits - 2 + bit_length(head_dim - 1) <= 52: 24-bit chunks at
#: head_dim 24 give 46 + 5 = 51), and the int64 fallback one format
#: beyond it (26-bit: 50 + 5 = 55), plus a single-chunk format whose
#: refinement loop is empty.
FORMATS = [
    (QuantConfig(12, 4), np.float32),
    (QuantConfig(12, 4), np.float64),
    (QuantConfig(24, 8), np.float64),
    (QuantConfig(26, 13), np.float64),
    (QuantConfig(8, 8), np.float64),
]
HEAD_DIM = 24


def _run_arena(config, qs, keys, values, scales, dtype, biases=None):
    q_sc, k_sc, v_sc = scales
    k_arena, v_arena, segments = _build_arena(
        keys, values, k_sc, v_sc, config.quant, dtype
    )
    return token_picker_attention_ragged(
        qs, None, None, config,
        score_bias=biases,
        q_scales=q_sc, k_scales=k_sc,
        k_plane_arena=k_arena, v_arena=v_arena, segments=segments,
        scratch=KernelScratch(),
    )


def _assert_lazy_matches_eager(lazy, eager):
    assert np.array_equal(lazy.round_alive, eager.round_alive)
    assert np.all(np.diff(lazy.round_alive) <= 0)
    for lz, eg in zip(lazy.results, eager.results):
        assert np.array_equal(lz.kept, eg.kept)
        assert np.array_equal(lz.chunks_fetched, eg.chunks_fetched)
        assert np.array_equal(lz.probs, eg.probs)
        assert np.array_equal(lz.outputs, eg.outputs)
        assert np.array_equal(lz.log_denominators, eg.log_denominators)
        kept = eg.kept
        # kept scores exact, pruned scores certified upper bounds
        assert np.array_equal(lz.scores[kept], eg.scores[kept])
        assert np.all(
            lz.scores[~kept]
            >= eg.scores[~kept] - (1e-9 + 1e-9 * np.abs(eg.scores[~kept]))
        )


class TestLazyVsEagerSweep:
    @settings(
        max_examples=30,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_seqs=st.integers(1, 5),
        n_heads=st.integers(1, 3),
        max_len=st.integers(1, 110),
        fmt=st.integers(0, len(FORMATS) - 1),
        with_bias=st.booleans(),
        guard=st.sampled_from([0, 1, 10_000]),
        thr=st.sampled_from([1e-4, 2e-3, 5e-2]),
    )
    def test_bit_identity(
        self, seed, n_seqs, n_heads, max_len, fmt, with_bias, guard, thr
    ):
        quant, dtype = FORMATS[fmt]
        rng = np.random.default_rng(seed)
        qs, keys, values, biases = _make_batch(
            rng, n_seqs, n_heads, HEAD_DIM, max_len, with_bias
        )
        scales = tuple(
            rng.uniform(0.005, 0.05, size=(n_seqs, n_heads))
            for _ in range(3)
        )
        eager = _run_arena(
            TokenPickerConfig(
                threshold=thr, quant=quant, prompt_guard=guard,
                score_backend="eager",
            ),
            qs, keys, values, scales, dtype, biases,
        )
        lazy = _run_arena(
            TokenPickerConfig(
                threshold=thr, quant=quant, prompt_guard=guard,
                score_backend="numpy",
            ),
            qs, keys, values, scales, dtype, biases,
        )
        _assert_lazy_matches_eager(lazy, eager)


class TestLazyEdges:
    def _case(self, seed=0, n_seqs=4, n_heads=2, max_len=90):
        rng = np.random.default_rng(seed)
        qs, keys, values, _ = _make_batch(
            rng, n_seqs, n_heads, HEAD_DIM, max_len, with_bias=False
        )
        scales = tuple(
            rng.uniform(0.005, 0.05, size=(n_seqs, n_heads))
            for _ in range(3)
        )
        return qs, keys, values, scales

    def test_single_chunk_format_has_empty_refinement(self):
        """n_chunks=1: the whole decision happens in the chunk-0 round."""
        qs, keys, values, scales = self._case()
        config = TokenPickerConfig(
            threshold=2e-3, quant=QuantConfig(8, 8), score_backend="numpy"
        )
        lazy = _run_arena(config, qs, keys, values, scales, np.float64)
        eager = _run_arena(
            TokenPickerConfig(
                threshold=2e-3, quant=QuantConfig(8, 8),
                score_backend="eager",
            ),
            qs, keys, values, scales, np.float64,
        )
        _assert_lazy_matches_eager(lazy, eager)
        assert lazy.round_alive.shape == (2,)
        for r in lazy.results:
            assert np.all(r.chunks_fetched == 1)

    def test_guard_covering_everything_keeps_scores_exact(self):
        """With every token guarded nothing is ever pruned, so the lazy
        path runs every refinement round to full depth and its *entire*
        score matrix — not just kept entries — is the eager one."""
        qs, keys, values, scales = self._case(seed=3)
        lazy = _run_arena(
            TokenPickerConfig(
                threshold=2e-3, prompt_guard=10_000, score_backend="numpy"
            ),
            qs, keys, values, scales, np.float32,
        )
        eager = _run_arena(
            TokenPickerConfig(
                threshold=2e-3, prompt_guard=10_000, score_backend="eager"
            ),
            qs, keys, values, scales, np.float32,
        )
        _assert_lazy_matches_eager(lazy, eager)
        for lz, eg in zip(lazy.results, eager.results):
            assert np.array_equal(lz.scores, eg.scores)
            assert lz.kept.all()

    def test_depth_schedule_rejected_on_every_backend(self):
        for backend in ("eager", "numpy", "numba"):
            config = TokenPickerConfig(
                schedule="depth", score_backend=backend
            )
            with pytest.raises(ValueError, match="breadth"):
                token_picker_attention_ragged(
                    np.zeros((1, 2, 8)), [np.zeros((2, 3, 8))],
                    [np.zeros((2, 3, 8))], config,
                )

    def test_lazy_matches_independent_batched_calls(self):
        """Transitivity check straight against the serving contract's
        ground truth (independent batched calls), not just the eager
        ragged path."""
        qs, keys, values, scales = self._case(seed=11)
        q_sc, k_sc, v_sc = scales
        config = TokenPickerConfig(threshold=2e-3, score_backend="numpy")
        lazy = _run_arena(config, qs, keys, values, scales, np.float32)
        for s in range(len(keys)):
            independent = token_picker_attention_batched(
                qs[s], keys[s], values[s], config,
                q_scales=q_sc[s], k_scales=k_sc[s], v_scales=v_sc[s],
            )
            r = lazy.results[s]
            assert np.array_equal(r.kept, independent.kept)
            assert np.array_equal(
                r.chunks_fetched, independent.chunks_fetched
            )
            assert np.array_equal(r.probs, independent.probs)
            assert np.array_equal(r.outputs, independent.outputs)
            assert np.array_equal(
                r.log_denominators, independent.log_denominators
            )


class TestScratchReuse:
    def test_round_buffers_stable_across_steps(self):
        """The lazy round loop's scratch views (partial scores, bounds,
        denominator work arrays, the hoisted ``ld_cols``/``m_tok``/exp
        buffers) must come from the same backing allocations on every
        same-shaped call — the allocator traffic the tentpole removed
        must not creep back."""
        rng = np.random.default_rng(5)
        n_seqs, n_heads = 4, 2
        qs, keys, values, _ = _make_batch(
            rng, n_seqs, n_heads, HEAD_DIM, 80, with_bias=False
        )
        scales = tuple(
            rng.uniform(0.005, 0.05, size=(n_seqs, n_heads))
            for _ in range(3)
        )
        q_sc, k_sc, v_sc = scales
        config = TokenPickerConfig(threshold=2e-3, score_backend="numpy")
        k_arena, v_arena, segments = _build_arena(
            keys, values, k_sc, v_sc, config.quant, np.float32
        )
        scratch = KernelScratch()

        def call():
            return token_picker_attention_ragged(
                qs, None, None, config,
                q_scales=q_sc, k_scales=k_sc,
                k_plane_arena=k_arena, v_arena=v_arena,
                segments=segments, scratch=scratch,
            )

        first = call()
        buffers_after_first = dict(scratch._buffers)
        for name in (
            "ld_cols", "m_tok", "ex", "m_cols", "m_fix", "den_cols",
            "lz_ps", "lz_smin", "lz_smax", "lz_mrow", "scores",
        ):
            assert any(k[0] == name for k in buffers_after_first), name
        second = call()
        assert set(scratch._buffers) == set(buffers_after_first)
        for key, buf in scratch._buffers.items():
            assert buf is buffers_after_first[key], key
        _assert_lazy_matches_eager(
            second, first
        )  # identical inputs -> identical outputs through reused scratch


CFG_KW = dict(threshold=2e-3)
N_HEADS = 4


def _requests(n, prompt=96, new=12, seed=0, head_dim=32):
    rng = np.random.default_rng(seed)
    return [
        synthetic_request(rng, N_HEADS, prompt, head_dim, new)
        for _ in range(n)
    ]


class TestEngineBackendIdentity:
    def _engine(
        self, backend, tier=None, batch=4, capacity=None, preemptible=False
    ):
        kwargs = {}
        if preemptible:
            from repro.cluster.memory import make_memory_manager

            kwargs = dict(
                block_size=8,
                memory_manager=make_memory_manager(
                    "optimistic", block_size=8
                ),
            )
        return ServingEngine(
            TokenPickerConfig(score_backend=backend, **CFG_KW),
            max_batch_size=batch,
            capacity_tokens=capacity or batch * 140,
            seed=0,
            kv_tiering=tier,
            **kwargs,
        )

    def test_backends_identical_under_preemption(self):
        """Lazy vs eager engines on the same overcommitted workload:
        identical outputs step for step, through swap-out/swap-in."""
        lazy_engine = self._engine(
            "numpy", batch=4, capacity=4 * 72, preemptible=True
        )
        eager_engine = self._engine(
            "eager", batch=4, capacity=4 * 72, preemptible=True
        )
        lazy = _drain_collecting(
            lazy_engine, _requests(8, prompt=48, new=24, seed=5)
        )
        eager = _drain_collecting(
            eager_engine, _requests(8, prompt=48, new=24, seed=5)
        )
        assert lazy_engine.preemptions_total > 0
        _assert_drains_identical(lazy, eager)

    def test_tiered_lazy_matches_untiered_eager(self):
        """The strongest composition: the lazy kernel under tiered KV
        demotion (including promotion-triggered kernel re-runs) against
        the untiered eager baseline — still bit-identical."""
        tier = TierConfig(
            policy="recency", recency_window=4, hot_tail=4,
            survive_idle_steps=1,
        )
        baseline = _drain_collecting(
            self._engine("eager"), _requests(4)
        )
        tiered_engine = self._engine("numpy", tier=tier)
        tiered = _drain_collecting(tiered_engine, _requests(4))
        _assert_drains_identical(baseline, tiered)
        assert tiered_engine.tiers.promotions_total > 0
        assert tiered_engine.tiers.rerun_steps_total > 0

    def test_engine_accumulates_round_alive(self):
        engine = self._engine("numpy")
        for request in _requests(4):
            engine.submit(request)
        reports = engine.run_until_drained()
        busy = [r for r in reports if r.batch_size]
        assert all(r.round_alive is not None for r in busy)
        totals = engine.round_alive_totals
        assert totals.shape == (
            engine.config.quant.n_chunks + 1,
        )
        assert totals[0] == sum(int(r.round_alive[0]) for r in busy)
        assert np.all(np.diff(totals) <= 0)
        assert totals[0] > 0
