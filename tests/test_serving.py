"""Tests for the batched serving-step simulator."""

import pytest

from repro.core import TokenPickerConfig
from repro.hw.serving import ServingSimulator, ServingStepResult, tokens_per_second
from repro.model.config import get_model_config, tiny_config


@pytest.fixture(scope="module")
def sim():
    # a small zoo model keeps instance simulation fast
    # the paper's context regime; short contexts blunt the attention
    # speedup (latency tail) and with it the end-to-end benefit
    model = get_model_config("gpt2-medium")
    return ServingSimulator(
        model, context_length=1024,
        config=TokenPickerConfig(threshold=2e-3),
        n_sample_instances=2, seed=1,
    )


class TestServingStep:
    def test_step_composition(self, sim):
        r = sim.step(4, "baseline")
        assert r.total_cycles == r.weight_cycles + r.attention_cycles
        assert 0 < r.attention_fraction < 1

    def test_weight_cycles_shared_across_batch(self, sim):
        r1 = sim.step(1, "baseline")
        r8 = sim.step(8, "baseline")
        assert r1.weight_cycles == r8.weight_cycles
        assert r8.attention_cycles == 8 * r1.attention_cycles

    def test_topick_attention_faster(self, sim):
        base = sim.step(8, "baseline")
        ours = sim.step(8, "topick")
        assert ours.attention_cycles < base.attention_cycles
        assert ours.weight_cycles == base.weight_cycles

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            sim.step(0)
        with pytest.raises(ValueError):
            ServingSimulator(get_model_config("gpt2-medium"), 0)
        with pytest.raises(ValueError):
            ServingSimulator(
                get_model_config("gpt2-medium"), 128, n_sample_instances=0
            )


class TestSpeedupCurve:
    def test_monotone_in_batch(self, sim):
        curve = sim.speedup_curve(batch_sizes=(1, 4, 16, 64))
        speedups = [p["speedup"] for p in curve]
        assert all(a <= b + 1e-9 for a, b in zip(speedups, speedups[1:]))
        # small at B=1 (weights dominate), substantial at B=64
        assert speedups[0] < 1.5
        assert speedups[-1] > 1.3

    def test_attention_fraction_grows(self, sim):
        curve = sim.speedup_curve(batch_sizes=(1, 16, 64))
        fracs = [p["attention_fraction"] for p in curve]
        assert fracs[0] < fracs[-1]


class TestMeasuredTraffic:
    def _stats(self, fetched_chunks, kept, n_tokens=256, head_dim=64):
        from repro.core import QuantConfig
        from repro.core.pruning import PruneStats

        return PruneStats(
            n_tokens=n_tokens,
            n_kept=kept,
            k_chunks_fetched=fetched_chunks,
            v_vectors_fetched=kept,
            head_dim=head_dim,
            quant=QuantConfig(),
        )

    def test_step_from_traffic_prices_each_sequence(self, sim):
        light = self._stats(fetched_chunks=300, kept=20)
        heavy = self._stats(fetched_chunks=700, kept=200)
        r = sim.step_from_traffic([light, heavy], engine_heads=4)
        assert r.batch_size == 2
        single = sim.step_from_traffic([light, heavy][:1], engine_heads=4)
        assert r.attention_cycles > single.attention_cycles
        # per-sequence latency tails: two streams cost more than one
        # pooled stream of the same bytes
        pooled = self._stats(fetched_chunks=1000, kept=220, n_tokens=512)
        assert (
            r.attention_cycles
            >= sim.step_from_traffic([pooled], engine_heads=4).attention_cycles
        )

    def test_baseline_variant_charges_unpruned_footprint(self, sim):
        stats = self._stats(fetched_chunks=300, kept=20)
        ours = sim.step_from_traffic([stats], engine_heads=4)
        base = sim.step_from_traffic([stats], "baseline", engine_heads=4)
        assert base.attention_cycles > ours.attention_cycles
        assert base.weight_cycles == ours.weight_cycles

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            sim.step_from_traffic([])
        with pytest.raises(ValueError):
            sim.step_from_traffic(
                [self._stats(fetched_chunks=10, kept=5)], engine_heads=0
            )


class TestThroughput:
    def test_tokens_per_second(self):
        r = ServingStepResult(
            variant="topick", batch_size=16, weight_cycles=1000,
            attention_cycles=1000,
        )
        tps = tokens_per_second(r, clock_ghz=0.5)
        # 2000 cycles at 500 MHz = 4 us for 16 tokens -> 4M tokens/s
        assert tps == pytest.approx(16 / (2000 / 0.5e9))


class TestPrefillPricing:
    def test_prefill_bits_priced_as_extra_stream(self, sim):
        stats = TestMeasuredTraffic()._stats(fetched_chunks=300, kept=20)
        plain = sim.step_from_traffic([stats], engine_heads=4)
        with_ingest = sim.step_from_traffic(
            [stats], engine_heads=4, prefill_bits=4096 * 8
        )
        assert plain.prefill_cycles == 0
        assert with_ingest.prefill_cycles > 0
        assert with_ingest.attention_cycles == plain.attention_cycles
        assert with_ingest.weight_cycles == plain.weight_cycles
        assert with_ingest.total_cycles == (
            plain.total_cycles + with_ingest.prefill_cycles
        )

    def test_prefill_only_step_is_priceable(self, sim):
        """A step whose whole budget went to ingestion has no decode
        traffic but still has a modelled latency."""
        r = sim.step_from_traffic([], prefill_bits=10_000, engine_heads=4)
        assert r.batch_size == 0 and r.attention_cycles == 0
        assert r.prefill_cycles > 0
        assert r.total_cycles == r.weight_cycles + r.prefill_cycles
        # an idle step (no decode, no ingest) is still a ValueError
        with pytest.raises(ValueError):
            sim.step_from_traffic([], prefill_bits=0)

    def test_baseline_and_variant_charge_identical_ingest(self, sim):
        stats = TestMeasuredTraffic()._stats(fetched_chunks=300, kept=20)
        ours = sim.step_from_traffic(
            [stats], engine_heads=4, prefill_bits=65536
        )
        base = sim.step_from_traffic(
            [stats], "baseline", engine_heads=4, prefill_bits=65536
        )
        assert ours.prefill_cycles == base.prefill_cycles > 0

    def test_tiered_prefill_only_step_is_priceable(self, sim):
        """A tiered engine's ingest-only step (budget all spent on prompt
        chunks) prices like the untiered path: prefill cycles, no
        attention streams."""
        from repro.serving.engine import EngineStepReport

        report = EngineStepReport(step_index=0, prefill_bits=24576)
        r = sim.step_from_tiered(report, engine_heads=4)
        assert r.batch_size == 0 and r.prefill_cycles > 0
        assert r.fast_attention_cycles == r.slow_attention_cycles == 0
        assert r.total_cycles == r.weight_cycles + r.prefill_cycles
        with pytest.raises(ValueError):
            sim.step_from_tiered(EngineStepReport(step_index=0))
