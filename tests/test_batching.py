"""Tests for the analytic batched-serving traffic model."""

import pytest

from repro.eval.batching import (
    asymptotic_speedup,
    batch_scaling_curve,
    measured_batch_point,
)
from repro.model.config import get_model_config


@pytest.fixture(scope="module")
def model():
    return get_model_config("gpt2-medium")


class TestBatchScalingCurve:
    def test_speedup_grows_with_batch(self, model):
        points = batch_scaling_curve(model, 2.5, batch_sizes=(1, 8, 64))
        speedups = [p.step_speedup for p in points]
        assert speedups == sorted(speedups)
        assert speedups[-1] < 2.5  # bounded by the attention reduction
        assert asymptotic_speedup(points) == speedups[-1]

    def test_default_context_is_model_max(self, model):
        points = batch_scaling_curve(model, 2.0, batch_sizes=(4,))
        explicit = batch_scaling_curve(
            model, 2.0, batch_sizes=(4,), context_length=model.max_context
        )
        assert points[0] == explicit[0]

    def test_rejects_bad_reduction(self, model):
        with pytest.raises(ValueError):
            batch_scaling_curve(model, 0.9)

    def test_rejects_batch_sizes_below_one(self, model):
        with pytest.raises(ValueError, match="batch_sizes"):
            batch_scaling_curve(model, 2.0, batch_sizes=(1, 0, 4))
        with pytest.raises(ValueError, match="batch_sizes"):
            batch_scaling_curve(model, 2.0, batch_sizes=(-3,))


class TestMeasuredPoint:
    def test_matches_uniform_curve_when_traffic_uniform(self, model):
        """With identical per-sequence stats the measured point reproduces
        the analytic curve's reduction ratio."""
        from repro.core import QuantConfig
        from repro.core.pruning import PruneStats

        stats = PruneStats(
            n_tokens=1024,
            n_kept=128,
            k_chunks_fetched=1500,
            v_vectors_fetched=128,
            head_dim=model.head_dim,
            quant=QuantConfig(),
        )
        point = measured_batch_point(
            model, [stats] * 8, context_length=1024, engine_heads=model.n_heads
        )
        assert point.batch_size == 8
        reduction = stats.baseline_total_bits / stats.total_bits_fetched
        assert point.kv_bytes / point.kv_bytes_pruned == pytest.approx(reduction)
        assert 1.0 < point.step_speedup < reduction
