"""Margin soundness: the heart of the certified estimate (Fig. 4b)."""

import numpy as np
import pytest

from repro.core.config import QuantConfig
from repro.core.margins import margin_pairs, margin_pairs_batch, score_bounds
from repro.core.quantization import partial_values

CFG = QuantConfig(total_bits=12, chunk_bits=4)


def _random_codes(rng, n, cfg=CFG):
    return rng.integers(cfg.qmin, cfg.qmax + 1, size=n).astype(np.int64)


class TestMarginPairs:
    def test_margins_shrink_monotonically(self):
        rng = np.random.default_rng(10)
        q = _random_codes(rng, 64)
        m = margin_pairs(q, CFG)
        widths = [m.width(b) for b in range(CFG.n_chunks + 1)]
        assert all(w1 >= w2 for w1, w2 in zip(widths, widths[1:]))
        assert widths[-1] == 0.0

    def test_margin_signs(self):
        rng = np.random.default_rng(11)
        q = _random_codes(rng, 64)
        m = margin_pairs(q, CFG)
        assert np.all(m.maxs >= 0)
        assert np.all(m.mins <= 0)

    def test_all_positive_query_has_zero_min_margin(self):
        q = np.abs(_random_codes(np.random.default_rng(12), 32)) + 1
        m = margin_pairs(q, CFG)
        assert np.all(m.mins[1:] == 0)

    def test_all_negative_query_has_zero_max_margin(self):
        q = -(np.abs(_random_codes(np.random.default_rng(13), 32)) + 1)
        m = margin_pairs(q, CFG)
        assert np.all(m.maxs[1:] == 0)

    def test_rejects_matrix_input(self):
        with pytest.raises(ValueError):
            margin_pairs(np.zeros((2, 3), dtype=np.int64), CFG)


class TestMarginSoundness:
    """For every chunk prefix: ps_b + M_min <= q.k <= ps_b + M_max."""

    @pytest.mark.parametrize("seed", range(8))
    def test_bounds_contain_true_dot(self, seed):
        rng = np.random.default_rng(100 + seed)
        d = 64
        q = _random_codes(rng, d)
        keys = _random_codes(rng, 50 * d).reshape(50, d)
        true_dots = keys @ q
        m = margin_pairs(q, CFG)
        for b in range(CFG.n_chunks + 1):
            partial = partial_values(keys, b, CFG)
            ps = partial @ q
            lo, hi = score_bounds(ps, b, m)
            assert np.all(lo <= true_dots), f"lower bound violated at b={b}"
            assert np.all(true_dots <= hi), f"upper bound violated at b={b}"

    def test_bounds_tight_for_adversarial_keys(self):
        """Keys built to sit exactly on the bounds achieve them."""
        d = 8
        rng = np.random.default_rng(42)
        q = _random_codes(rng, d)
        b = 1
        resid = CFG.residual_max(b)
        # Key whose unknown bits are all ones where q > 0, zeros where q < 0
        # achieves the max bound exactly (and vice versa).
        base = _random_codes(rng, d)
        high = partial_values(base, b, CFG)
        k_max = high + np.where(q > 0, resid, 0)
        k_min = high + np.where(q < 0, resid, 0)
        m = margin_pairs(q, CFG)
        ps = high @ q
        lo, hi = score_bounds(ps, b, m)
        assert k_max @ q == hi
        assert k_min @ q == lo

    @pytest.mark.parametrize("total,chunk", [(8, 2), (8, 4), (16, 4)])
    def test_soundness_other_formats(self, total, chunk):
        cfg = QuantConfig(total_bits=total, chunk_bits=chunk)
        rng = np.random.default_rng(total * 7 + chunk)
        d = 16
        q = rng.integers(cfg.qmin, cfg.qmax + 1, size=d).astype(np.int64)
        keys = rng.integers(cfg.qmin, cfg.qmax + 1, size=(30, d)).astype(np.int64)
        m = margin_pairs(q, cfg)
        dots = keys @ q
        for b in range(cfg.n_chunks + 1):
            ps = partial_values(keys, b, cfg) @ q
            lo, hi = score_bounds(ps, b, m)
            assert np.all(lo <= dots) and np.all(dots <= hi)


class TestMarginBatch:
    def test_batch_matches_single(self):
        rng = np.random.default_rng(77)
        qs = rng.integers(CFG.qmin, CFG.qmax + 1, size=(5, 64)).astype(np.int64)
        mins, maxs = margin_pairs_batch(qs, CFG)
        assert mins.shape == (5, CFG.n_chunks + 1)
        for i in range(5):
            single = margin_pairs(qs[i], CFG)
            assert np.array_equal(mins[i], single.mins)
            assert np.array_equal(maxs[i], single.maxs)


class TestPaperExampleFig4b:
    """The worked example in Fig. 4(b): 6-bit operands, 2-bit chunks.

    Q fully known, K has 2 bits known (chunk 0) then 4 bits (chunks 0-1).
    The score interval shrinks as chunks arrive and always contains the
    true score.
    """

    def test_six_bit_margin_narrowing(self):
        cfg = QuantConfig(total_bits=6, chunk_bits=2)
        rng = np.random.default_rng(8)
        d = 4
        q = rng.integers(cfg.qmin, cfg.qmax + 1, size=d).astype(np.int64)
        k = rng.integers(cfg.qmin, cfg.qmax + 1, size=d).astype(np.int64)
        m = margin_pairs(q, cfg)
        true = int(k @ q)
        prev_width = None
        for b in range(cfg.n_chunks + 1):
            ps = int(partial_values(k, b, cfg) @ q)
            lo, hi = score_bounds(np.array(ps), b, m)
            assert lo <= true <= hi
            width = float(hi - lo)
            if prev_width is not None:
                assert width <= prev_width
            prev_width = width
        assert prev_width == 0.0
