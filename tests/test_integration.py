"""Integration tests: full pipelines across modules, plus the examples.

These exercise the same paths a user follows: train a (very small) LM,
generate with pruned attention, evaluate PPL + traffic, run the hardware
simulator on instances harvested from the LM, and execute the fast example
scripts end to end.
"""

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import TokenPickerConfig, token_picker_scores
from repro.eval.perplexity import backend_perplexity_and_traffic, corpus_perplexity
from repro.hw import ToPickAccelerator
from repro.model import TinyGPT, TrainConfig, tiny_config, train
from repro.model.attention import TokenPickerBackend
from repro.workloads import mixed_corpus, train_eval_split

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"


@pytest.fixture(scope="module")
def trained_setup():
    """A quickly-trained LM (seconds, not the full reference model)."""
    corpus = mixed_corpus(12_000, vocab_size=32, seed=3)
    train_tokens, eval_tokens = train_eval_split(corpus, 0.15)
    model = TinyGPT(
        tiny_config(name="integ", n_layers=2, d_model=32, n_heads=4,
                    vocab_size=32, max_context=96),
        seed=3,
    )
    result = train(
        model, train_tokens,
        TrainConfig(steps=120, batch_size=8, seq_len=64, lr=2.5e-3),
        seed=3,
    )
    return model, eval_tokens, result


class TestTrainingPipeline:
    def test_loss_improves(self, trained_setup):
        _, _, result = trained_setup
        assert result.improved
        assert np.mean(result.losses[-10:]) < result.initial_loss - 0.3

    def test_trained_ppl_beats_uniform(self, trained_setup):
        model, eval_tokens, _ = trained_setup
        ppl = corpus_perplexity(model, eval_tokens, window=64, max_windows=2).ppl
        assert ppl < 32 * 0.8  # clearly better than uniform over vocab


class TestPrunedEvaluationPipeline:
    def test_ppl_and_traffic_tradeoff(self, trained_setup):
        model, eval_tokens, _ = trained_setup
        ref = corpus_perplexity(model, eval_tokens, window=64, max_windows=2)
        tight, tight_c = backend_perplexity_and_traffic(
            model, eval_tokens,
            lambda: TokenPickerBackend(TokenPickerConfig(threshold=1e-6)),
            window=64, max_windows=2,
        )
        loose, loose_c = backend_perplexity_and_traffic(
            model, eval_tokens,
            lambda: TokenPickerBackend(TokenPickerConfig(threshold=5e-2)),
            window=64, max_windows=2,
        )
        # tiny threshold: lossless and little pruning
        assert tight.ppl == pytest.approx(ref.ppl, rel=0.02)
        # loose threshold: strictly more pruning
        assert loose_c.total_bits < tight_c.total_bits
        assert loose_c.keep_fraction < 1.0

    def test_generation_with_pruning_stays_in_vocab(self, trained_setup):
        model, eval_tokens, _ = trained_setup
        backend = TokenPickerBackend(TokenPickerConfig(threshold=1e-2))
        out = model.generate(np.asarray(eval_tokens[:8]), 16, backend=backend)
        assert out.min() >= 0 and out.max() < 32
        assert len(out) == 24


class TestLMToHardwarePipeline:
    def test_harvested_instances_run_on_accelerator(self, trained_setup):
        """q/K harvested from the trained LM drive the cycle simulator."""
        model, eval_tokens, _ = trained_setup
        seq = np.asarray(eval_tokens[:64])
        _, cache = model.forward(seq[None, :])
        _, layer_caches, _, _ = cache
        q_all = layer_caches[0][2][0]  # (H, T, dh)
        k_all = layer_caches[0][3][0]
        acc = ToPickAccelerator(config=TokenPickerConfig(threshold=5e-3))
        pos = 60
        total_kept = 0
        for h in range(model.config.n_heads):
            r = acc.run_instance(q_all[h, pos], k_all[h, : pos + 1], variant="topick")
            assert r.cycles > 0
            assert r.dram_bytes <= r.baseline_dram_bytes
            total_kept += int(r.kept.sum())
        assert total_kept >= model.config.n_heads  # guard survives everywhere

    def test_functional_vs_hw_access_consistency(self, trained_setup):
        model, eval_tokens, _ = trained_setup
        seq = np.asarray(eval_tokens[:64])
        _, cache = model.forward(seq[None, :])
        q = cache[1][0][2][0][0, 60]
        keys = cache[1][0][3][0][0, :61]
        cfg = TokenPickerConfig(threshold=5e-3)
        fn = token_picker_scores(q, keys, cfg)
        hw = ToPickAccelerator(config=cfg).run_instance(q, keys, variant="v_only")
        assert np.array_equal(fn.kept, hw.kept)


class TestExamples:
    """The fast examples must run as scripts (the LM-backed ones are
    exercised by benchmarks where the cached model exists)."""

    @pytest.mark.parametrize(
        "script", ["quickstart.py", "accelerator_simulation.py",
                   "spatten_comparison.py"]
    )
    def test_example_runs(self, script):
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / script)],
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr[-2000:]
        assert len(proc.stdout) > 100
