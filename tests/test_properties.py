"""Property-based tests (hypothesis) for the core safety invariants.

These are the load-bearing guarantees of the paper (Sec. 3.1); each is
tested over randomly-generated operands rather than hand-picked cases:

1. chunk decomposition reconstructs exactly and bounds partial values;
2. margins bound the true dot product at every prefix, for any q/k;
3. the certified estimate dominates the true probability for any subset;
4. no pruned token ever exceeds the threshold (w.r.t. quantized scores),
   for any instance, threshold, order and schedule;
5. the running log-sum matches exact logsumexp under adds and tightenings.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import (
    QuantConfig,
    TokenPickerConfig,
    margin_pairs,
    score_bounds,
    token_picker_scores,
)
from repro.core.quantization import (
    assemble_from_chunks,
    partial_values,
    split_chunks,
)
from repro.utils.numerics import RunningLogSum

CFG12 = QuantConfig(total_bits=12, chunk_bits=4)
CFG8 = QuantConfig(total_bits=8, chunk_bits=2)

codes_12 = st.integers(min_value=CFG12.qmin, max_value=CFG12.qmax)
codes_8 = st.integers(min_value=CFG8.qmin, max_value=CFG8.qmax)


@st.composite
def code_vectors(draw, cfg, min_dim=1, max_dim=24):
    dim = draw(st.integers(min_dim, max_dim))
    elems = st.integers(min_value=cfg.qmin, max_value=cfg.qmax)
    return np.array(draw(st.lists(elems, min_size=dim, max_size=dim)),
                    dtype=np.int64)


class TestChunkProperties:
    @given(values=st.lists(codes_12, min_size=1, max_size=50))
    def test_roundtrip(self, values):
        vals = np.array(values, dtype=np.int32)
        assert np.array_equal(
            assemble_from_chunks(split_chunks(vals, CFG12), CFG12), vals
        )

    @given(values=st.lists(codes_8, min_size=1, max_size=50),
           b=st.integers(0, CFG8.n_chunks))
    def test_partial_bounds(self, values, b):
        vals = np.array(values, dtype=np.int32)
        partial = partial_values(vals, b, CFG8)
        resid = vals.astype(np.int64) - partial
        assert np.all(resid >= 0)
        assert np.all(resid <= CFG8.residual_max(b))


class TestMarginProperties:
    @given(data=st.data())
    @settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
    def test_margins_sound_for_any_operands(self, data):
        q = data.draw(code_vectors(CFG12, max_dim=16))
        n_keys = data.draw(st.integers(1, 8))
        keys = np.stack(
            [data.draw(code_vectors(CFG12, min_dim=len(q), max_dim=len(q)))
             for _ in range(n_keys)]
        )
        margins = margin_pairs(q, CFG12)
        dots = keys @ q
        for b in range(CFG12.n_chunks + 1):
            ps = partial_values(keys, b, CFG12) @ q
            lo, hi = score_bounds(ps, b, margins)
            assert np.all(lo <= dots)
            assert np.all(dots <= hi)

    @given(q=code_vectors(CFG12, max_dim=32))
    def test_margin_widths_monotone(self, q):
        m = margin_pairs(q, CFG12)
        widths = [m.width(b) for b in range(CFG12.n_chunks + 1)]
        assert all(a >= b for a, b in zip(widths, widths[1:]))
        assert widths[-1] == 0.0


class TestPruningSafety:
    @given(
        seed=st.integers(0, 10_000),
        thr=st.sampled_from([1e-4, 1e-3, 1e-2, 1e-1]),
        order=st.sampled_from(["sink_recency", "recency", "chronological"]),
        schedule=st.sampled_from(["breadth", "depth"]),
        t=st.integers(2, 40),
        sharp=st.floats(0.2, 4.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_pruned_token_above_threshold(
        self, seed, thr, order, schedule, t, sharp
    ):
        rng = np.random.default_rng(seed)
        d = 16
        keys = rng.normal(size=(t, d))
        q = keys[rng.integers(t)] * sharp + rng.normal(size=d) * 0.5
        cfg = TokenPickerConfig(
            threshold=thr, order=order, schedule=schedule, prompt_guard=0
        )
        r = token_picker_scores(q, keys, cfg)
        # probabilities of the quantized scores the algorithm acted on
        s = r.scores
        p = np.exp(s - s.max())
        p /= p.sum()
        assert np.all(p[~r.kept] <= thr + 1e-9)
        # and at least one token survives unless everything is prunable
        assert r.kept.any() or (p <= thr + 1e-9).all()

    @given(seed=st.integers(0, 10_000), t=st.integers(2, 30))
    @settings(max_examples=30, deadline=None)
    def test_chunks_fetched_valid(self, seed, t):
        rng = np.random.default_rng(seed)
        keys = rng.normal(size=(t, 8))
        q = rng.normal(size=8)
        r = token_picker_scores(q, keys, TokenPickerConfig())
        assert np.all((1 <= r.chunks_fetched) & (r.chunks_fetched <= 3))
        assert np.all(r.chunks_fetched[r.kept] == 3)

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_threshold_monotonicity(self, seed):
        """A larger threshold never keeps more tokens (breadth schedule)."""
        rng = np.random.default_rng(seed)
        keys = rng.normal(size=(24, 8))
        q = keys[3] * 2 + rng.normal(size=8) * 0.3
        cfg_lo = TokenPickerConfig(threshold=1e-3)
        cfg_hi = TokenPickerConfig(threshold=1e-2)
        r_lo = token_picker_scores(q, keys, cfg_lo)
        r_hi = token_picker_scores(q, keys, cfg_hi)
        assert r_hi.stats.n_kept <= r_lo.stats.n_kept
        # and hi-threshold kept set is a subset of lo-threshold kept set
        assert not np.any(r_hi.kept & ~r_lo.kept)


class TestRunningLogSumProperties:
    @given(terms=st.lists(st.floats(-50, 50), min_size=1, max_size=60))
    def test_matches_logsumexp(self, terms):
        s = RunningLogSum()
        for t in terms:
            s.add(t)
        assert np.isclose(s.log_value, np.logaddexp.reduce(np.array(terms)),
                          atol=1e-9)

    @given(
        terms=st.lists(st.floats(-30, 30), min_size=2, max_size=30),
        deltas=st.lists(st.floats(0, 10), min_size=2, max_size=30),
    )
    def test_replace_matches_recompute(self, terms, deltas):
        n = min(len(terms), len(deltas))
        terms, deltas = terms[:n], deltas[:n]
        s = RunningLogSum()
        for t in terms:
            s.add(t)
        for t, d in zip(terms, deltas):
            s.replace(t, t + d)
        expected = np.logaddexp.reduce(np.array(terms) + np.array(deltas))
        assert np.isclose(s.log_value, expected, atol=1e-6)


class TestBiasProperties:
    @given(seed=st.integers(0, 5_000), scale=st.floats(0.1, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_bias_preserves_safety(self, seed, scale):
        """ALiBi-style bias shifts bounds, not the certificate."""
        rng = np.random.default_rng(seed)
        t, d = 20, 8
        keys = rng.normal(size=(t, d))
        q = rng.normal(size=d) * scale
        bias = -0.1 * np.arange(t)[::-1].astype(float)
        cfg = TokenPickerConfig(threshold=1e-2, prompt_guard=0)
        r = token_picker_scores(q, keys, cfg, score_bias=bias)
        p = np.exp(r.scores - r.scores.max())
        p /= p.sum()
        assert np.all(p[~r.kept] <= cfg.threshold + 1e-9)
