"""Pluggable score-backend contract: resolution, fallback and parity.

The lazy kernel dispatches its two contraction primitives through
:func:`repro.core.score_backend.resolve_backend`.  The load-bearing
properties:

* ``"numpy"`` always resolves; ``"numba"`` resolves to the compiled
  primitives when numba is installed and *degrades gracefully* (one
  ``RuntimeWarning`` per process, then silence) to the bit-identical
  NumPy implementation when it is not — so configs carrying the flag
  are portable to machines without numba.
* ``"eager"`` is a kernel-path selector, not a contraction backend —
  resolving it is an error, but configuring it is valid.
* The compiled primitives match the NumPy ones bit for bit on every
  accumulation dtype (exact integers make the order irrelevant).
"""

import warnings

import numpy as np
import pytest

from repro.core import TokenPickerConfig, token_picker_attention_ragged
from repro.core.config import VALID_SCORE_BACKENDS
from repro.core.score_backend import (
    NUMBA_AVAILABLE,
    numba_available,
    resolve_backend,
)


def _contraction_case(rng, dtype, total=60, n_heads=3, n_chunks=3, d=16):
    planes = rng.integers(-8, 16, size=(total, n_heads, n_chunks, d)).astype(
        np.float32 if dtype == np.float32 else np.float64
    )
    bounds = np.sort(rng.choice(total - 1, size=3, replace=False) + 1)
    st = np.concatenate([[0], bounds]).astype(np.int64)
    en = np.concatenate([bounds, [total]]).astype(np.int64)
    q = rng.integers(-2048, 2048, size=(st.size, n_heads, d)).astype(
        np.float32 if dtype == np.float32 else np.float64
    )
    return planes, st, en, q


class TestResolution:
    def test_numpy_always_resolves(self):
        backend = resolve_backend("numpy")
        assert backend.name == "numpy"
        assert backend.compiled is False

    def test_eager_is_not_a_contraction_backend(self):
        with pytest.raises(ValueError, match="full-table"):
            resolve_backend("eager")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown score backend"):
            resolve_backend("cuda")

    def test_config_validates_backend_names(self):
        for name in VALID_SCORE_BACKENDS:
            assert TokenPickerConfig(score_backend=name).score_backend == name
        with pytest.raises(ValueError, match="score_backend"):
            TokenPickerConfig(score_backend="fortran")

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed")
    def test_numba_falls_back_with_one_warning(self):
        import repro.core.score_backend as sb

        sb._warned_numba_missing = False
        try:
            with pytest.warns(RuntimeWarning, match="falling back"):
                backend = resolve_backend("numba")
            assert backend.name == "numpy"
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # second resolve is silent
                assert resolve_backend("numba").name == "numpy"
        finally:
            sb._warned_numba_missing = False

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    def test_numba_resolves_compiled(self):
        backend = resolve_backend("numba")
        assert backend.name == "numba"
        assert backend.compiled is True

    def test_numba_available_reports_import_state(self):
        assert numba_available() is NUMBA_AVAILABLE


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
class TestCompiledParity:
    """The compiled primitives are bit-identical to NumPy's."""

    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int64], ids=str
    )
    def test_contract_chunk0_matches(self, dtype):
        rng = np.random.default_rng(0)
        planes, st, en, q = _contraction_case(
            rng, np.float64 if dtype == np.int64 else dtype
        )
        if dtype == np.int64:
            planes = planes.astype(np.int64)
            q = q.astype(np.int64)
        planes_c0 = np.ascontiguousarray(planes[:, :, 0, :])
        ref = np.zeros((planes.shape[1], planes.shape[0]), dtype=dtype)
        out = np.ones_like(ref)
        resolve_backend("numpy").contract_chunk0(planes_c0, q, st, en, ref)
        resolve_backend("numba").contract_chunk0(planes_c0, q, st, en, out)
        assert np.array_equal(ref, out)

    @pytest.mark.parametrize(
        "dtype", [np.float32, np.float64, np.int64], ids=str
    )
    def test_contract_pairs_matches(self, dtype):
        rng = np.random.default_rng(1)
        planes, st, en, q = _contraction_case(
            rng, np.float64 if dtype == np.int64 else dtype
        )
        total, n_heads = planes.shape[0], planes.shape[1]
        n_pairs = 40
        t_idx = rng.integers(0, total, size=n_pairs)
        h_idx = rng.integers(0, n_heads, size=n_pairs)
        q_pair = rng.integers(-2048, 2048, size=(n_pairs, planes.shape[3]))
        q_pair = q_pair.astype(
            np.int64 if dtype == np.int64 else planes.dtype
        )
        ref = np.zeros(n_pairs, dtype=dtype)
        out = np.ones_like(ref)
        resolve_backend("numpy").contract_pairs(
            planes, 1, t_idx, h_idx, q_pair, ref
        )
        resolve_backend("numba").contract_pairs(
            planes, 1, t_idx, h_idx, q_pair, out
        )
        assert np.array_equal(ref, out)


class TestNumbaConfigPortability:
    def test_numba_config_runs_and_matches_numpy(self):
        """``score_backend="numba"`` must produce the numpy backend's
        exact outputs whether or not numba is installed — compiled
        parity when present, graceful fallback when absent.  Uses the
        packed-arena path: that is the only path the lazy pipeline (and
        hence backend resolution) runs on."""
        import repro.core.score_backend as sb
        from test_ragged_kernel import _build_arena, _make_batch

        rng = np.random.default_rng(2)
        n_seqs, n_heads, head_dim = 4, 2, 16
        qs, keys, values, _ = _make_batch(
            rng, n_seqs, n_heads, head_dim, 80, with_bias=False
        )
        q_sc = rng.uniform(0.005, 0.05, size=(n_seqs, n_heads))
        k_sc = rng.uniform(0.005, 0.05, size=(n_seqs, n_heads))
        v_sc = rng.uniform(0.005, 0.05, size=(n_seqs, n_heads))

        def run(backend):
            config = TokenPickerConfig(
                threshold=2e-3, score_backend=backend
            )
            k_arena, v_arena, segments = _build_arena(
                keys, values, k_sc, v_sc, config.quant, np.float32
            )
            return token_picker_attention_ragged(
                qs, None, None, config,
                q_scales=q_sc, k_scales=k_sc,
                k_plane_arena=k_arena, v_arena=v_arena, segments=segments,
            )

        sb._warned_numba_missing = False
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                via_numba = run("numba")
        finally:
            sb._warned_numba_missing = False
        via_numpy = run("numpy")
        for a, b in zip(via_numba.results, via_numpy.results):
            assert np.array_equal(a.kept, b.kept)
            assert np.array_equal(a.chunks_fetched, b.chunks_fetched)
            assert np.array_equal(a.scores, b.scores)
            assert np.array_equal(a.probs, b.probs)
            assert np.array_equal(a.outputs, b.outputs)
            assert np.array_equal(a.log_denominators, b.log_denominators)
