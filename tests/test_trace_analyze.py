"""Post-hoc trace analysis must reproduce the live telemetry.

The trace is required to be a *sufficient statistic* for the serving
run: :mod:`repro.obs.analyze` rebuilds, from the artifact alone, the
same TTFT breakdown, inter-token latency and per-round alive profiles
the live :class:`ClusterRouter` / :class:`ServingEngine` accumulated.
The JSONL span log carries exact floats, so live and post-hoc numbers
agree bit-exactly; the Perfetto JSON round-trips through microseconds
and agrees to 1e-6 s.
"""

import numpy as np
import pytest

from repro.cluster import (
    ClusterRouter,
    FaultInjector,
    bursty_trace,
    fault_schedule,
)
from repro.core import TokenPickerConfig
from repro.obs import Tracer
from repro.obs.analyze import analyze, analyze_file, load_events
from repro.serving import ServingEngine, synthetic_request
from repro.workloads import failover_trace

N_HEADS, HEAD_DIM = 2, 8

#: the histogram series the router observes per retired request / step
LATENCY_SERIES = (
    "ttft_seconds",
    "queue_wait_seconds",
    "prefill_seconds",
    "e2e_seconds",
    "step_seconds",
    "token_latency_seconds",
)


def _traced_router(tracer, n_replicas=2, seed=13, **kw):
    kw.setdefault("max_batch_size", 2)
    kw.setdefault("capacity_tokens", 512)
    return ClusterRouter(n_replicas, seed=seed, tracer=tracer, **kw)


def _run_cluster(tracer, seed=13, n_requests=10):
    router = _traced_router(tracer, seed=seed)
    router.run_trace(
        bursty_trace(
            np.random.default_rng(seed),
            n_requests,
            n_heads=N_HEADS,
            head_dim=HEAD_DIM,
            prompt_tokens=24,
            max_new_tokens=6,
            burst_size=4,
            gap_steps=2,
        )
    )
    return router


def _assert_histograms_match(router, analysis, n_replicas, tol):
    for rid in range(n_replicas):
        for name in LATENCY_SERIES:
            live = router.metrics.histogram(name, replica=rid)
            rebuilt = analysis.registry.histogram(name, replica=f"r{rid}")
            assert rebuilt.count == live.count, (name, rid)
            if tol == 0:
                assert rebuilt.total == live.total, (name, rid)
            else:
                assert rebuilt.total == pytest.approx(
                    live.total, abs=tol
                ), (name, rid)
        live_tokens = router.metrics.counter(
            "tokens_generated", replica=rid
        ).value
        rebuilt_tokens = analysis.registry.counter(
            "tokens_generated", replica=f"r{rid}"
        ).value
        assert rebuilt_tokens == live_tokens
        assert (
            analysis.registry.counter(
                "requests_completed", replica=f"r{rid}"
            ).value
            == router.metrics.counter("requests_completed", replica=rid).value
        )


class TestClusterAnalyze:
    def test_jsonl_matches_live_exactly(self, tmp_path):
        tracer = Tracer()
        router = _run_cluster(tracer)
        path = tracer.write_span_log(tmp_path / "spans.jsonl")
        analysis = analyze_file(path)
        _assert_histograms_match(router, analysis, 2, tol=0)

    def test_perfetto_matches_live_within_microsecond(self, tmp_path):
        tracer = Tracer()
        router = _run_cluster(tracer)
        path = tracer.write_trace(tmp_path / "trace.json")
        analysis = analyze_file(path)
        # one µs-rounded stamp per observation, a handful of observations
        _assert_histograms_match(router, analysis, 2, tol=1e-4)

    def test_faulted_run_matches_live(self, tmp_path):
        tracer = Tracer()
        router = _traced_router(tracer, n_replicas=3, capacity_tokens=256)
        injector = FaultInjector(
            router, fault_schedule(7, 3, n_kills=2, revive_after=4)
        )
        injector.run_trace(
            failover_trace(
                np.random.default_rng(7),
                n_heads=N_HEADS,
                head_dim=HEAD_DIM,
                n_requests=8,
                arrivals_per_step=1,
                prompt_tokens=10,
                max_new_tokens=8,
            )
        )
        assert injector.stats.kills >= 1
        path = tracer.write_span_log(tmp_path / "spans.jsonl")
        analysis = analyze_file(path)
        _assert_histograms_match(router, analysis, 3, tol=0)

    def test_summary_shape(self, tmp_path):
        tracer = Tracer()
        _run_cluster(tracer)
        summary = analyze_file(
            tracer.write_span_log(tmp_path / "s.jsonl")
        ).summary()
        assert summary["requests_finished"] == 10
        assert set(summary["replicas"]) == {"r0", "r1"}
        for block in summary["replicas"].values():
            assert "ttft_seconds" in block


class TestEngineAnalyze:
    def _drained(self, tracer, n=6, seed=4):
        engine = ServingEngine(
            TokenPickerConfig(threshold=2e-3),
            max_batch_size=3,
            capacity_tokens=512,
            seed=seed,
            tracer=tracer,
        )
        rng = np.random.default_rng(seed)
        for _ in range(n):
            engine.submit(synthetic_request(rng, N_HEADS, 16, HEAD_DIM, 6))
        engine.run_until_drained()
        return engine

    def test_round_alive_profile_matches_engine(self):
        tracer = Tracer()
        engine = self._drained(tracer)
        analysis = analyze(
            [dict(r, args=r.get("args") or {}, dur_s=r.get("dur_s", 0.0))
             for r in tracer.to_span_records()]
        )
        assert analysis.round_alive["engine"] == [
            int(v) for v in engine.round_alive_totals
        ]

    def test_ttft_matches_request_stats(self, tmp_path):
        tracer = Tracer()
        engine = self._drained(tracer)
        analysis = analyze_file(
            tracer.write_span_log(tmp_path / "spans.jsonl")
        )
        live = sorted(
            c.stats.ttft_seconds for c in engine.completed
            if c.stats.ttft_seconds >= 0
        )
        rebuilt = sorted(
            r.ttft_seconds
            for r in analysis.requests
            if r.state == "finished" and r.ttft_seconds >= 0
        )
        assert rebuilt == live

    def test_sampled_trace_undercounts_steps_only(self, tmp_path):
        full, sampled = Tracer(), Tracer(sample_steps=3)
        self._drained(full)
        self._drained(sampled)
        a_full = analyze_file(full.write_span_log(tmp_path / "f.jsonl"))
        a_samp = analyze_file(sampled.write_span_log(tmp_path / "s.jsonl"))
        assert 0 < a_samp.step_spans < a_full.step_spans
        # request lifecycles are always complete
        assert len(a_samp.requests) == len(a_full.requests)

    def test_tier_instants_become_counters(self, tmp_path):
        from repro.kvstore import TierConfig

        tracer = Tracer()
        engine = ServingEngine(
            TokenPickerConfig(threshold=2e-3),
            max_batch_size=3,
            capacity_tokens=512,
            seed=4,
            kv_tiering=TierConfig(policy="mass", hot_budget_tokens=16),
            tracer=tracer,
        )
        rng = np.random.default_rng(4)
        for _ in range(6):
            engine.submit(synthetic_request(rng, N_HEADS, 16, HEAD_DIM, 6))
        engine.run_until_drained()
        snap = engine.tiers.snapshot()
        analysis = analyze_file(
            tracer.write_span_log(tmp_path / "spans.jsonl")
        )
        if snap["demotions"]:
            assert (
                analysis.registry.counter(
                    "tier_demotions", replica="engine"
                ).value
                == snap["demotions"]
            )
        if snap["promotions"]:
            assert (
                analysis.registry.counter(
                    "tier_promotions", replica="engine"
                ).value
                == snap["promotions"]
            )
