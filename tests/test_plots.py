"""Tests for the terminal plotting helpers."""

import numpy as np
import pytest

from repro.eval.plots import bar_chart, heatmap, histogram, series_plot


class TestBarChart:
    def test_renders_all_rows(self):
        out = bar_chart(["a", "bb"], [1.0, 2.0], width=10)
        lines = out.split("\n")
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # max fills the width

    def test_proportional(self):
        out = bar_chart(["x", "y"], [1.0, 4.0], width=20)
        first, second = out.split("\n")
        assert second.count("#") == 4 * first.count("#")

    def test_title_and_unit(self):
        out = bar_chart(["x"], [2.0], title="T", unit="x")
        assert out.startswith("T\n")
        assert "2x" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0], width=0)

    def test_zero_values(self):
        out = bar_chart(["a"], [0.0])
        assert "#" not in out


class TestHistogram:
    def test_shape(self):
        counts = [1, 5, 2]
        edges = [0, 1, 2, 3]
        out = histogram(counts, edges, height=4)
        lines = out.split("\n")
        assert len(lines) == 6  # 4 rows + separator + range line
        assert lines[0][1] == "#"  # tallest bin filled at the top row

    def test_empty(self):
        assert histogram([], [0], title="t") == "t"

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram([1, 2], [0, 1])
        with pytest.raises(ValueError):
            histogram([1], [0, 1], height=0)


class TestHeatmap:
    def test_shading(self):
        m = np.array([[0.0, 1.0], [0.5, 0.25]])
        out = heatmap(m, row_labels=["r0", "r1"])
        lines = out.split("\n")
        assert lines[0].startswith("r0")
        assert "@" in lines[0]  # max value gets the densest shade
        assert lines[0][lines[0].index("[") + 1] == " "  # zero is blank

    def test_validation(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros(3))
        with pytest.raises(ValueError):
            heatmap(np.zeros((2, 2)), row_labels=["only-one"])


class TestSeriesPlot:
    def test_markers_present(self):
        out = series_plot([0, 1, 2], {"up": [0, 1, 2], "down": [2, 1, 0]})
        assert "a" in out and "b" in out
        assert "a=up" in out and "b=down" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            series_plot([0, 1], {"s": [0, 1]}, height=1)

    def test_flat_series(self):
        out = series_plot([0, 1], {"flat": [1.0, 1.0]})
        assert "a" in out
