"""Tests for shared utilities (rng, tables, units, numerics helpers)."""

import numpy as np
import pytest

from repro.utils.numerics import log_softmax, logsumexp, safe_exp, softmax
from repro.utils.rng import derive_seed, make_rng, spawn_rngs
from repro.utils.tables import format_series, format_table
from repro.utils.units import GIB, KIB, MIB, format_bytes, gib, kib, mib


class TestRng:
    def test_none_is_deterministic(self):
        a = make_rng(None).integers(1000)
        b = make_rng(None).integers(1000)
        assert a == b

    def test_int_seed(self):
        assert make_rng(5).integers(1000) == make_rng(5).integers(1000)
        assert make_rng(5).integers(1000) != make_rng(6).integers(1000) or True

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_spawn_independent(self):
        children = spawn_rngs(0, 3)
        draws = [c.integers(10**9) for c in children]
        assert len(set(draws)) == 3

    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
        assert spawn_rngs(0, 0) == []

    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)
        assert derive_seed(1, 2, 3) != derive_seed(1, 3, 2)
        assert derive_seed(1, 2, 3) >= 0


class TestNumerics:
    def test_logsumexp_matches_numpy(self):
        x = np.random.default_rng(0).normal(size=100) * 10
        assert np.isclose(logsumexp(x), np.logaddexp.reduce(x))

    def test_logsumexp_empty(self):
        assert logsumexp(np.zeros(0)) == -np.inf

    def test_logsumexp_axis(self):
        x = np.random.default_rng(1).normal(size=(3, 5))
        out = logsumexp(x, axis=1)
        assert out.shape == (3,)
        assert np.allclose(out, np.logaddexp.reduce(x, axis=1))

    def test_softmax_rows(self):
        p = softmax(np.array([[1.0, 2.0], [0.0, 0.0]]))
        assert np.allclose(p.sum(axis=1), 1.0)
        assert np.allclose(p[1], 0.5)

    def test_log_softmax_consistent(self):
        x = np.random.default_rng(2).normal(size=7)
        assert np.allclose(np.exp(log_softmax(x)), softmax(x))

    def test_safe_exp_clips(self):
        assert np.isfinite(safe_exp(np.array([1e6]))).all()


class TestTables:
    def test_basic_rendering(self):
        out = format_table([[1, 2.5]], headers=["a", "b"])
        lines = out.split("\n")
        assert lines[0].startswith("a")
        assert "2.5" in lines[2]

    def test_title_and_padding(self):
        out = format_table([["x", 1], ["longer", 22]], title="T")
        assert out.startswith("T\n")
        rows = out.split("\n")[1:]
        assert len(set(len(r.rstrip()) for r in rows)) <= 2  # aligned-ish

    def test_empty(self):
        assert format_table([], title="only") == "only"

    def test_ragged_rows_padded(self):
        out = format_table([[1, 2], [3]])
        assert "3" in out

    def test_series(self):
        s = format_series("curve", [1, 2], [0.5, 0.25], unit="x")
        assert "1=0.5x" in s and "2=0.25x" in s


class TestUnits:
    def test_conversions(self):
        assert kib(2048) == 2.0
        assert mib(3 * MIB) == 3.0
        assert gib(GIB) == 1.0
        assert KIB * 1024 == MIB

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(2 * KIB) == "2.00 KiB"
        assert format_bytes(5 * MIB) == "5.00 MiB"
        assert format_bytes(3 * GIB) == "3.00 GiB"
