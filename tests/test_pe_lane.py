"""Tests for the Fig. 7 PE-lane microarchitecture modules."""

import math

import numpy as np
import pytest

from repro.core import TokenPickerConfig
from repro.hw import ToPickAccelerator
from repro.hw.fixedpoint import ConservativeExpUnit
from repro.hw.pe_lane import (
    DAGUnit,
    PELane,
    PartialExpCalculator,
    ProbabilityGenerator,
    RequestPruneDecisionUnit,
    Scoreboard,
    ScoreboardEntry,
    ScoreboardFullError,
)
from repro.workloads import sample_workload


class TestScoreboard:
    def test_store_fetch_release(self):
        sb = Scoreboard(capacity=4)
        sb.store(ScoreboardEntry(token=7, chunks_known=1, partial_score=1.0,
                                 partial_exp=2.0))
        entry = sb.fetch(7)
        assert entry.partial_exp == 2.0
        assert sb.reads == 1 and sb.writes == 1
        sb.release(7)
        assert not sb.contains(7)
        assert len(sb) == 0

    def test_capacity_enforced(self):
        sb = Scoreboard(capacity=2)
        for t in range(2):
            sb.store(ScoreboardEntry(t, 1, 0.0, 1.0))
        with pytest.raises(ScoreboardFullError):
            sb.store(ScoreboardEntry(9, 1, 0.0, 1.0))

    def test_update_existing_when_full(self):
        sb = Scoreboard(capacity=1)
        sb.store(ScoreboardEntry(0, 1, 0.0, 1.0))
        sb.store(ScoreboardEntry(0, 2, 0.5, 2.0))  # update, not alloc
        assert sb.fetch(0).chunks_known == 2

    def test_peak_occupancy(self):
        sb = Scoreboard(capacity=8)
        for t in range(5):
            sb.store(ScoreboardEntry(t, 1, 0.0, 1.0))
        sb.release(0)
        assert sb.peak_occupancy == 5

    def test_missing_fetch_raises(self):
        with pytest.raises(KeyError):
            Scoreboard().fetch(3)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Scoreboard(0)


class TestPEC:
    def test_float_mode_exact(self):
        pec = PartialExpCalculator()
        assert pec.partial_exp(1.5) == pytest.approx(math.exp(1.5))

    def test_delta_non_negative(self):
        pec = PartialExpCalculator()
        new, delta = pec.delta(2.0, math.exp(1.0))
        assert new == pytest.approx(math.exp(2.0))
        assert delta == pytest.approx(math.exp(2.0) - math.exp(1.0))

    def test_fixed_point_rounds_down(self):
        pec = PartialExpCalculator(ConservativeExpUnit())
        for x in np.linspace(-10, 10, 50):
            assert pec.partial_exp(float(x)) <= math.exp(x) * (1 + 1e-12)

    def test_evaluation_counter(self):
        pec = PartialExpCalculator()
        pec.partial_exp(0.0)
        pec.delta(1.0, 0.5)
        assert pec.evaluations == 2


class TestDAG:
    def test_aggregation(self):
        dag = DAGUnit()
        dag.aggregate(math.exp(1.0))
        dag.aggregate(math.exp(2.0))
        assert dag.ln_denominator == pytest.approx(np.logaddexp(1.0, 2.0))
        assert dag.updates == 2

    def test_empty_is_minus_inf(self):
        assert DAGUnit().ln_denominator == -math.inf

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            DAGUnit().aggregate(-0.1)

    def test_fixed_point_ln_rounds_down(self):
        dag = DAGUnit(ConservativeExpUnit())
        dag.aggregate(10.0)
        assert dag.ln_denominator <= math.log(10.0) + 1e-12


class TestRPDU:
    def test_predicate(self):
        rpdu = RequestPruneDecisionUnit(math.log(1e-3))
        assert rpdu.decide(-10.0, 0.0)  # p'' = e^-10 << 1e-3
        assert not rpdu.decide(-2.0, 0.0)
        assert rpdu.decisions == 2 and rpdu.prunes == 1

    def test_never_prunes_empty_denominator(self):
        rpdu = RequestPruneDecisionUnit(math.log(1e-3))
        assert not rpdu.decide(-100.0, -math.inf)


class TestProbabilityGenerator:
    def test_probability(self):
        pg = ProbabilityGenerator()
        assert pg.probability(1.0, 2.0) == pytest.approx(math.exp(-1.0))
        assert pg.evaluations == 1


class TestPELaneFlow:
    def _lane(self, thr=1e-3):
        return PELane(lane_id=0, log_threshold=math.log(thr), n_chunks=3)

    def test_dominant_token_survives_all_chunks(self):
        lane, dag = self._lane(), DAGUnit()
        for b in (1, 2, 3):
            d = lane.process_chunk(
                token=0, chunks_known=b, partial_score=5.0,
                s_min=5.0 - 1.0 / b, s_max=5.0 + 1.0 / b,
                dag=dag, lane_dim=64,
            )
        assert d.action == "kept"
        assert len(lane.scoreboard) == 0
        assert lane.macs == 3 * 64

    def test_weak_token_pruned_after_dominant(self):
        lane, dag = self._lane(), DAGUnit()
        lane.process_chunk(0, 1, 10.0, 9.5, 10.5, dag, 64)
        d = lane.process_chunk(1, 1, -10.0, -10.5, -9.5, dag, 64)
        assert d.action == "pruned"
        assert lane.rpdu.prunes == 1

    def test_guarded_token_never_pruned(self):
        lane, dag = self._lane(), DAGUnit()
        lane.process_chunk(0, 1, 10.0, 9.5, 10.5, dag, 64)
        d = lane.process_chunk(1, 1, -10.0, -10.5, -9.5, dag, 64, guarded=True)
        assert d.action == "request_next"
        assert lane.scoreboard.contains(1)

    def test_scoreboard_roundtrip_between_chunks(self):
        lane, dag = self._lane(1e-9), DAGUnit()
        d1 = lane.process_chunk(3, 1, 0.0, -1.0, 1.0, dag, 64)
        assert d1.action == "request_next"
        d2 = lane.process_chunk(3, 2, 0.2, -0.5, 0.7, dag, 64)
        assert d2.action == "request_next"
        assert lane.scoreboard.fetch(3).chunks_known == 2


class TestFixedPointAccelerator:
    def test_fixed_point_keeps_superset(self):
        """Conservative arithmetic prunes a subset: kept(float) subset of
        kept(fixed-point) is not guaranteed per token (denominator history
        differs slightly), but totals must be >= within a small margin and
        safety must hold."""
        w = sample_workload(256, n_instances=3, seed=9)
        cfg = TokenPickerConfig(threshold=2e-3)
        float_acc = ToPickAccelerator(config=cfg)
        fxp_acc = ToPickAccelerator(config=cfg, use_fixed_point=True)
        rf = float_acc.run_workload(w, variant="topick")
        rx = fxp_acc.run_workload(w, variant="topick")
        assert rx.n_kept >= rf.n_kept - 2
        assert abs(rx.n_kept - rf.n_kept) <= 0.05 * max(rf.n_kept, 1) + 3

    def test_fixed_point_safety(self):
        from repro.core import token_picker_scores

        w = sample_workload(256, n_instances=2, seed=10)
        cfg = TokenPickerConfig(threshold=2e-3)
        acc = ToPickAccelerator(config=cfg, use_fixed_point=True)
        for inst in w:
            r = acc.run_instance(inst.q, inst.keys, variant="topick")
            full = token_picker_scores(inst.q, inst.keys, cfg.with_threshold(1e-12))
            p = np.exp(full.scores - full.scores.max())
            p /= p.sum()
            assert np.all(p[~r.kept] <= cfg.threshold + 1e-12)
