"""Tests for the conservative probability estimator and the DAG model."""

import numpy as np
import pytest

from repro.core.estimator import (
    DenominatorAggregator,
    PruneRule,
    certified_upper_bounds,
    true_probabilities,
)
from repro.utils.numerics import RunningLogSum


class TestRunningLogSum:
    def test_empty_is_minus_inf(self):
        assert RunningLogSum().log_value == -np.inf

    def test_single_term(self):
        s = RunningLogSum()
        s.add(3.5)
        assert np.isclose(s.log_value, 3.5)

    def test_matches_logsumexp(self):
        rng = np.random.default_rng(0)
        terms = rng.normal(size=200) * 10
        s = RunningLogSum()
        for t in terms:
            s.add(t)
        expected = np.logaddexp.reduce(terms)
        assert np.isclose(s.log_value, expected)

    def test_replace_tightens(self):
        s = RunningLogSum()
        s.add(0.0)
        s.add(1.0)
        s.replace(0.0, 2.0)
        expected = np.logaddexp(2.0, 1.0)
        assert np.isclose(s.log_value, expected)

    def test_replace_backwards_rejected(self):
        s = RunningLogSum()
        s.add(5.0)
        with pytest.raises(ValueError):
            s.replace(5.0, 4.0)

    def test_minus_inf_terms(self):
        s = RunningLogSum()
        s.add(-np.inf)
        assert s.log_value == -np.inf
        s.add(1.0)
        assert np.isclose(s.log_value, 1.0)

    def test_large_dynamic_range(self):
        s = RunningLogSum()
        s.add(-500.0)
        s.add(500.0)
        assert np.isclose(s.log_value, 500.0)


class TestDenominatorAggregator:
    def test_monotone_nondecreasing(self):
        rng = np.random.default_rng(1)
        dag = DenominatorAggregator()
        prev = -np.inf
        for token in range(100):
            dag.submit(token, float(rng.normal() * 5))
            assert dag.log_denominator >= prev - 1e-12
            prev = dag.log_denominator

    def test_tightening_increases_denominator(self):
        dag = DenominatorAggregator()
        dag.submit(0, 0.0)
        d0 = dag.log_denominator
        dag.submit(0, 1.0)  # bound tightened by a later chunk
        assert dag.log_denominator > d0

    def test_backwards_bound_rejected(self):
        dag = DenominatorAggregator()
        dag.submit(0, 1.0)
        with pytest.raises(ValueError):
            dag.submit(0, 0.0)

    def test_lower_bounds_true_denominator(self):
        """D from lower bounds never exceeds the true softmax denominator."""
        rng = np.random.default_rng(2)
        scores = rng.normal(size=50) * 3
        slack = np.abs(rng.normal(size=50))  # s_min = s - slack <= s
        dag = DenominatorAggregator()
        for i, (s, sl) in enumerate(zip(scores, slack)):
            dag.submit(i, float(s - sl))
        true_log_den = np.logaddexp.reduce(scores)
        assert dag.log_denominator <= true_log_den + 1e-12

    def test_len_counts_tokens(self):
        dag = DenominatorAggregator()
        dag.submit(0, 1.0)
        dag.submit(1, 2.0)
        dag.submit(0, 1.5)
        assert len(dag) == 2

    def test_lower_bound_lookup(self):
        dag = DenominatorAggregator()
        dag.submit(7, 0.25)
        assert dag.lower_bound(7) == 0.25
        with pytest.raises(KeyError):
            dag.lower_bound(8)


class TestPruneRule:
    def test_never_prunes_on_empty_denominator(self):
        rule = PruneRule(np.log(1e-3))
        decision = rule.check(s_max=-100.0, log_denominator=-np.inf)
        assert not decision.pruned

    def test_prune_decision_matches_linear_domain(self):
        rule = PruneRule(np.log(1e-3))
        # p'' = exp(-10) / exp(0) = 4.5e-5 <= 1e-3 -> prune
        assert rule.check(-10.0, 0.0).pruned
        # p'' = exp(-2) = 0.135 > 1e-3 -> keep
        assert not rule.check(-2.0, 0.0).pruned

    def test_batch_matches_scalar(self):
        rule = PruneRule(np.log(1e-2))
        s_max = np.linspace(-20, 5, 40)
        batch = rule.check_batch(s_max, 0.0)
        scalar = np.array([rule.check(s, 0.0).pruned for s in s_max])
        assert np.array_equal(batch, scalar)

    def test_boundary_inclusive(self):
        """p'' == thr prunes (predicate is <=)."""
        rule = PruneRule(np.log(1e-3))
        assert rule.check(np.log(1e-3), 0.0).pruned


class TestCertifiedBound:
    """The central safety theorem: p'' >= p_true for any subset/bounds."""

    @pytest.mark.parametrize("seed", range(10))
    def test_upper_bound_dominates_truth(self, seed):
        rng = np.random.default_rng(200 + seed)
        n = 100
        scores = rng.normal(size=n) * rng.uniform(1, 6)
        lower_slack = np.abs(rng.normal(size=n))
        upper_slack = np.abs(rng.normal(size=n))
        s_min = scores - lower_slack
        s_max = scores + upper_slack
        # any subset
        subset = rng.random(n) < rng.uniform(0.2, 1.0)
        subset[rng.integers(n)] = True  # non-empty
        log_den = np.logaddexp.reduce(s_min[subset])
        p_true = true_probabilities(scores)
        p_upper = certified_upper_bounds(s_max, log_den)
        assert np.all(p_upper >= p_true - 1e-12)

    def test_infinite_bound_on_empty_denominator(self):
        ub = certified_upper_bounds(np.array([0.0, 1.0]), -np.inf)
        assert np.all(np.isinf(ub))

    def test_true_probabilities_sum_to_one(self):
        p = true_probabilities(np.array([1.0, 2.0, 3.0]))
        assert np.isclose(p.sum(), 1.0)

    def test_true_probabilities_empty(self):
        assert true_probabilities(np.zeros(0)).size == 0
